// Package obs is the pipeline-wide observability layer: span-based
// tracing, a metrics registry, an always-on flight recorder (see
// recorder.go), and deterministic exporters (JSONL event journal,
// Chrome trace_event, ring dump, plain-text summary).
//
// The package is zero-dependency (standard library only) so every layer
// of the repair pipeline — core, smt, sat, tsys, eval, the CLIs — can
// import it without cycles. Two properties shape the design:
//
//   - Off by default, allocation-free when off. A nil *Tracer is the
//     disabled tracer: Start on a nil tracer returns a nil *Span, and
//     every Span/Tracer/Registry method is nil-safe, so instrumented hot
//     paths pay exactly one nil check per site. BenchmarkNilTracer in
//     internal/sat pins this cost against the solver hot loop.
//
//   - Deterministic output modulo timestamps. Spans are identified by a
//     hierarchical path (parent path + name + per-parent sequence, or a
//     caller-supplied key for concurrent siblings such as portfolio
//     attempts), and exporters sort by path and re-number ids after the
//     fact. Two runs that do the same work produce byte-identical
//     exports once timestamps and worker ids are scrubbed (see Scrub*),
//     which is what lets golden tests diff traces across worker counts.
package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	Str   string // used when IsStr
	Int   int64  // used otherwise
	IsStr bool
}

// Span is one timed region of the pipeline. A nil *Span is the disabled
// span: every method no-ops, so instrumentation sites need no guards.
type Span struct {
	t      *Tracer
	parent *Span
	name   string // aggregation name ("window", "attempt", ...)
	path   string // unique hierarchical identity
	start  time.Duration
	dur    time.Duration
	worker int
	closed bool
	attrs  []Attr
	kidSeq map[string]int // next per-name child sequence (guarded by t.mu)
}

// Tracer records spans. The zero value is not usable; call New. A nil
// *Tracer is the disabled tracer (the fast path): Start returns nil.
type Tracer struct {
	mu      sync.Mutex
	base    time.Time
	spans   []*Span
	rootSeq map[string]int
}

// New returns an enabled tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{base: time.Now(), rootSeq: map[string]int{}}
}

// Enabled reports whether the tracer records spans (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() time.Duration { return time.Since(t.base) }

// Start opens a span under parent (nil parent = a root span). The span's
// path gets a per-parent sequence number, so Start is deterministic only
// when the parent's children are opened in a deterministic order; for
// concurrent siblings use StartKeyed.
func (t *Tracer) Start(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, name, "")
}

// StartKeyed opens a span whose path component is name[key] instead of a
// sequence number. The caller must ensure key is unique among the
// parent's same-named children; in exchange the path — and therefore the
// exported output — is deterministic even when siblings start
// concurrently (e.g. portfolio attempts racing on worker goroutines).
func (t *Tracer) StartKeyed(parent *Span, name, key string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, name, key)
}

func (t *Tracer) start(parent *Span, name, key string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var component, base string
	worker := 0
	if parent != nil {
		base = parent.path
		worker = parent.worker
	}
	if key != "" {
		component = name + "[" + key + "]"
	} else {
		seq := t.rootSeq
		if parent != nil {
			if parent.kidSeq == nil {
				parent.kidSeq = map[string]int{}
			}
			seq = parent.kidSeq
		}
		n := seq[name]
		seq[name] = n + 1
		component = fmt.Sprintf("%s#%04d", name, n)
	}
	sp := &Span{
		t:      t,
		parent: parent,
		name:   name,
		path:   base + "/" + component,
		start:  t.now(),
		worker: worker,
	}
	t.spans = append(t.spans, sp)
	return sp
}

// End closes the span. Ending an already-ended span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.closed {
		s.dur = s.t.now() - s.start
		s.closed = true
	}
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.t.mu.Unlock()
}

// SetBool attaches a boolean attribute (encoded as 0/1).
func (s *Span) SetBool(key string, v bool) {
	var i int64
	if v {
		i = 1
	}
	s.SetInt(key, i)
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.t.mu.Unlock()
}

// SetWorker tags the span (and, by inheritance, its future children)
// with a portfolio worker id. Exporters map it to the Chrome trace tid,
// so Perfetto shows one lane per worker.
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.worker = w
	s.t.mu.Unlock()
}

// Name returns the span's aggregation name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// spanSnapshot is an immutable copy used by exporters.
type spanSnapshot struct {
	name   string
	path   string
	parent string // parent path, "" for roots
	start  time.Duration
	dur    time.Duration
	worker int
	closed bool
	attrs  []Attr
}

// snapshot copies all spans sorted by path (parents sort before their
// children because a parent's path is a strict prefix + "/").
func (t *Tracer) snapshot() []spanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]spanSnapshot, 0, len(t.spans))
	for _, sp := range t.spans {
		ss := spanSnapshot{
			name:   sp.name,
			path:   sp.path,
			start:  sp.start,
			dur:    sp.dur,
			worker: sp.worker,
			closed: sp.closed,
			attrs:  append([]Attr(nil), sp.attrs...),
		}
		if sp.parent != nil {
			ss.parent = sp.parent.path
		}
		out = append(out, ss)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// PhaseStat aggregates all spans sharing one name.
type PhaseStat struct {
	Count int
	Total time.Duration
}

// PhaseTotals aggregates spans by name. Nested spans with distinct names
// each contribute their full duration, so totals across different names
// overlap; totals within one name do not.
func (t *Tracer) PhaseTotals() map[string]PhaseStat {
	out := map[string]PhaseStat{}
	for _, ss := range t.snapshot() {
		ps := out[ss.name]
		ps.Count++
		ps.Total += ss.dur
		out[ss.name] = ps
	}
	return out
}

// Scope bundles a tracer position (tracer + current span), a metrics
// registry, and a flight-recorder position (recorder + current recorder
// span + hierarchical label), so one value threads the whole
// observability layer through the pipeline. The zero Scope is fully
// disabled and free to pass around. Tracer and Recorder are
// independent: production runs typically have a nil Tracer (tracing is
// opt-in) but a live Recorder (the flight recorder is always on).
type Scope struct {
	Tracer  *Tracer
	Span    *Span
	Metrics *Registry

	// Rec is the flight recorder; Scope.Start/End mirror their spans
	// into it as span_begin/span_end events plus live-span-table
	// entries. Label is the scope's hierarchical position (job id,
	// design, attempt, window — grown with WithLabel) and becomes the
	// events' Scope field; Worker tags events with a portfolio worker
	// lane. Rh is the recorder span opened by the last Start.
	Rec    *Recorder
	Rh     Handle
	Label  string
	Worker int
}

// Enabled reports whether the scope records spans.
func (sc Scope) Enabled() bool { return sc.Tracer != nil }

// WithLabel returns the scope with part appended to its hierarchical
// label ("a" + "b" → "a/b"). Labels scope flight-recorder events, so
// /debugz consumers and SSE subscribers can filter by job, design, or
// attempt prefix.
func (sc Scope) WithLabel(part string) Scope {
	if part == "" {
		return sc
	}
	if sc.Label == "" {
		sc.Label = part
	} else {
		sc.Label = sc.Label + "/" + part
	}
	return sc
}

// Start opens a child span and returns the scope positioned on it.
func (sc Scope) Start(name string) Scope {
	out := sc
	out.Span = sc.Tracer.Start(sc.Span, name)
	out.Rh = sc.Rec.BeginSpan(sc.Rh, name, sc.Label, sc.Worker)
	return out
}

// StartKeyed opens a keyed child span (see Tracer.StartKeyed).
func (sc Scope) StartKeyed(name, key string) Scope {
	out := sc
	out.Span = sc.Tracer.StartKeyed(sc.Span, name, key)
	out.Rh = sc.Rec.BeginSpan(sc.Rh, name, sc.Label, sc.Worker)
	return out
}

// End closes the scope's span (tracer and recorder sides).
func (sc Scope) End() {
	sc.Span.End()
	sc.Rh.End()
}

// Event emits a flight-recorder event at the scope's position. A scope
// without a recorder no-ops, so progress markers are free when the
// recorder is disabled (tests with private pipelines).
func (sc Scope) Event(kind, name string, attrs ...Attr) {
	sc.Rec.Emit(kind, name, sc.Label, sc.Worker, attrs...)
}

type ctxKey struct{}

// NewContext returns a context carrying the scope.
func NewContext(ctx context.Context, sc Scope) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the scope from a context (zero Scope if absent).
func FromContext(ctx context.Context) Scope {
	if ctx == nil {
		return Scope{}
	}
	sc, _ := ctx.Value(ctxKey{}).(Scope)
	return sc
}
