package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"rtlrepair/internal/obs"
	"rtlrepair/internal/serve"
)

// RouterConfig tunes the fleet router.
type RouterConfig struct {
	// Nodes maps node name → base URL (e.g. "node-a" →
	// "http://10.0.0.1:8080"). Names feed the rendezvous hash, so they
	// must be stable across router restarts or the keyspace remaps.
	Nodes map[string]string
	// ProbeInterval is the health-probe period. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 2s.
	ProbeTimeout time.Duration
	// RetryBackoff is the pause before trying the next replica after a
	// failed forward. Default 100ms.
	RetryBackoff time.Duration
	// TenantQuota caps submissions per tenant per minute (fixed window);
	// 0 disables quotas. Requests without a tenant share one anonymous
	// bucket.
	TenantQuota int
	// BatchShedUtil sheds priority=batch submissions once fleet-wide
	// queue utilization (sum depth / sum cap over reachable nodes)
	// exceeds it, keeping latency headroom for interactive traffic.
	// Default 0.75; >= 1 disables shedding.
	BatchShedUtil float64
	// Metrics receives fleet.router.* counters. Default: fresh registry.
	Metrics *obs.Registry
	// Client issues forwards; default has no timeout (submissions may
	// legitimately block on ?wait=1). Probes bound themselves with
	// ProbeTimeout.
	Client *http.Client
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.BatchShedUtil == 0 {
		c.BatchShedUtil = 0.75
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// member is one node as the router sees it.
type member struct {
	name string
	base string

	mu        sync.Mutex
	reachable bool
	ready     bool
	stats     serve.Stats
	lastErr   string
}

func (m *member) snapshot() (reachable, ready bool, stats serve.Stats, lastErr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reachable, m.ready, m.stats, m.lastErr
}

// tenantWindow is one tenant's fixed-window submission counter.
type tenantWindow struct {
	start time.Time
	count int
}

// Router shards repair submissions across fleet nodes by their result
// key: rendezvous hashing picks the home node (so identical requests
// always land where their cache entry lives), the rest of the ranking
// is the failover order. Create with NewRouter, serve its Handler,
// stop with Close.
type Router struct {
	cfg     RouterConfig
	metrics *obs.Registry
	members []*member // sorted by name
	names   []string

	mu      sync.Mutex
	jobNode map[string]*member // routed job id → owning node
	jobIDs  []string           // FIFO of routed ids, bounds jobNode
	tenants map[string]*tenantWindow

	stop     chan struct{}
	stopOnce sync.Once
	probes   sync.WaitGroup
}

// maxRoutedJobs bounds the job→node table; the oldest routing entries
// are dropped first (their jobs are long terminal).
const maxRoutedJobs = 16384

// NewRouter builds a router and synchronously probes every node once,
// so routing decisions are informed from the first request.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: router needs at least one node")
	}
	rt := &Router{
		cfg:     cfg,
		metrics: cfg.Metrics,
		jobNode: map[string]*member{},
		tenants: map[string]*tenantWindow{},
		stop:    make(chan struct{}),
	}
	for name, base := range cfg.Nodes {
		rt.members = append(rt.members, &member{name: name, base: base})
		rt.names = append(rt.names, name)
	}
	sort.Slice(rt.members, func(i, j int) bool { return rt.members[i].name < rt.members[j].name })
	sort.Strings(rt.names)
	rt.probeAll()
	rt.probes.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probes.Wait()
}

func (rt *Router) probeLoop() {
	defer rt.probes.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll refreshes every member concurrently. One failed probe marks
// a node unreachable — the forwarder deprioritizes it but still tries
// it as a last resort, so a flapping probe cannot black-hole traffic.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.probe(m)
		}(m)
	}
	wg.Wait()
	depth, capacity, ready := 0, 0, 0
	for _, m := range rt.members {
		reach, rdy, stats, _ := m.snapshot()
		if !reach {
			continue
		}
		depth += stats.QueueDepth
		capacity += stats.QueueCap
		if rdy {
			ready++
		}
	}
	rt.metrics.SetGauge("fleet.router.nodes_ready", float64(ready))
	rt.metrics.SetGauge("fleet.router.queue_depth", float64(depth))
	rt.metrics.SetGauge("fleet.router.queue_cap", float64(capacity))
}

func (rt *Router) probe(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+"/healthz/ready", nil)
	if err != nil {
		rt.markProbe(m, false, false, serve.Stats{}, err.Error())
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.markProbe(m, false, false, serve.Stats{}, err.Error())
		return
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stats); err != nil {
		rt.markProbe(m, false, false, serve.Stats{}, "decode: "+err.Error())
		return
	}
	rt.markProbe(m, true, resp.StatusCode == http.StatusOK && stats.Ready, stats, "")
}

func (rt *Router) markProbe(m *member, reachable, ready bool, stats serve.Stats, errMsg string) {
	m.mu.Lock()
	m.reachable = reachable
	m.ready = ready
	m.stats = stats
	m.lastErr = errMsg
	m.mu.Unlock()
}

// utilization is fleet-wide queue pressure: sum depth / sum cap over
// reachable nodes (1.0 when nothing is reachable — fail closed for
// batch shedding).
func (rt *Router) utilization() float64 {
	depth, capacity := 0, 0
	for _, m := range rt.members {
		reach, _, stats, _ := m.snapshot()
		if !reach {
			continue
		}
		depth += stats.QueueDepth
		capacity += stats.QueueCap
	}
	if capacity == 0 {
		return 1
	}
	return float64(depth) / float64(capacity)
}

// admit runs fleet-wide admission control. A non-nil response means
// the submission was rejected; (status, retryAfter seconds, message).
func (rt *Router) admit(req *serve.Request) (int, int, string) {
	if !serve.ValidPriority(req.Priority) {
		return http.StatusBadRequest, 0, fmt.Sprintf("unknown priority %q", req.Priority)
	}
	if rt.cfg.TenantQuota > 0 {
		rt.mu.Lock()
		tw := rt.tenants[req.Tenant]
		now := time.Now()
		if tw == nil || now.Sub(tw.start) >= time.Minute {
			tw = &tenantWindow{start: now}
			rt.tenants[req.Tenant] = tw
		}
		if tw.count >= rt.cfg.TenantQuota {
			retry := int(time.Minute.Seconds() - now.Sub(tw.start).Seconds())
			rt.mu.Unlock()
			if retry < 1 {
				retry = 1
			}
			rt.metrics.Add("fleet.router.quota_rejected", 1)
			return http.StatusTooManyRequests, retry,
				fmt.Sprintf("tenant %q over quota (%d/min)", req.Tenant, rt.cfg.TenantQuota)
		}
		tw.count++
		rt.mu.Unlock()
	}
	if req.Priority == serve.PriorityBatch && rt.cfg.BatchShedUtil < 1 {
		if util := rt.utilization(); util > rt.cfg.BatchShedUtil {
			rt.metrics.Add("fleet.router.shed_batch", 1)
			return http.StatusTooManyRequests, 5,
				fmt.Sprintf("batch traffic shed: fleet queue utilization %.0f%%", util*100)
		}
	}
	return 0, 0, ""
}

// candidates returns the members to try for key, best first: the
// rendezvous ranking filtered to ready nodes, then the not-ready-but-
// reachable ones, then the rest — a fully partitioned router still
// attempts delivery rather than failing closed.
func (rt *Router) candidates(key string) []*member {
	byName := map[string]*member{}
	for _, m := range rt.members {
		byName[m.name] = m
	}
	ranked := RankNodes(rt.names, key)
	var ready, reachable, rest []*member
	for _, name := range ranked {
		m := byName[name]
		reach, rdy, _, _ := m.snapshot()
		switch {
		case reach && rdy:
			ready = append(ready, m)
		case reach:
			reachable = append(reachable, m)
		default:
			rest = append(rest, m)
		}
	}
	out := append(ready, reachable...)
	return append(out, rest...)
}

// rememberJob records which node owns a routed job id so later polls
// and event streams proxy to the right place.
func (rt *Router) rememberJob(id string, m *member) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.jobNode[id]; !ok {
		rt.jobIDs = append(rt.jobIDs, id)
	}
	rt.jobNode[id] = m
	for len(rt.jobIDs) > maxRoutedJobs {
		drop := rt.jobIDs[0]
		rt.jobIDs = rt.jobIDs[1:]
		delete(rt.jobNode, drop)
	}
}

func (rt *Router) jobOwner(id string) *member {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.jobNode[id]
}

// Handler returns the router's HTTP API: the serve submission/poll
// surface (forwarded to the owning shard) plus fleet-wide health and
// the /debugz/fleet aggregation.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repair", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJobEvents)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /healthz/live", rt.handleLive)
	mux.HandleFunc("GET /healthz/ready", rt.handleHealth)
	mux.HandleFunc("GET /metricsz", rt.handleMetrics)
	mux.HandleFunc("GET /debugz/fleet", rt.handleFleet)
	return mux
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"body: " + err.Error()})
		return
	}
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"body: " + err.Error()})
		return
	}
	if status, retry, msg := rt.admit(&req); status != 0 {
		if retry > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retry))
		}
		writeJSON(w, status, errorJSON{msg})
		return
	}
	key := serve.ResultKey(&req)
	rt.forward(w, r, key, body)
}

// forward tries the key's replica sequence until a node gives a
// conclusive answer. Retriable outcomes — network failure, 429 (that
// shard's queue is full), 5xx — advance to the next replica after a
// backoff; this trades strict shard affinity for availability, and the
// rendezvous ranking makes the fallback replica deterministic too.
// 400 is conclusive (validation is deterministic across nodes).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	type lastReply struct {
		status int
		header http.Header
		body   []byte
	}
	var last *lastReply
	for i, m := range rt.candidates(key) {
		if i > 0 {
			rt.metrics.Add("fleet.router.retries", 1)
			select {
			case <-time.After(rt.cfg.RetryBackoff):
			case <-r.Context().Done():
				return
			}
		}
		url := m.base + "/v1/repair"
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		freq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
			return
		}
		freq.Header.Set("Content-Type", "application/json")
		resp, err := rt.cfg.Client.Do(freq)
		if err != nil {
			rt.metrics.Add("fleet.router.forward_errors", 1)
			continue
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if rerr != nil {
			rt.metrics.Add("fleet.router.forward_errors", 1)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			last = &lastReply{resp.StatusCode, resp.Header, respBody}
			continue
		}
		// Conclusive: relay, and remember which node owns the job.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			var view serve.JobView
			if json.Unmarshal(respBody, &view) == nil && view.ID != "" {
				rt.rememberJob(view.ID, m)
			}
			rt.metrics.Add("fleet.router.forwarded", 1)
			rt.metrics.Add("fleet.router.forwarded."+m.name, 1)
		}
		relay(w, resp.StatusCode, resp.Header, respBody)
		return
	}
	rt.metrics.Add("fleet.router.exhausted", 1)
	if last != nil {
		relay(w, last.status, last.header, last.body)
		return
	}
	writeJSON(w, http.StatusBadGateway, errorJSON{"no fleet node reachable"})
}

// relay copies a node's response to the client, preserving the JSON
// body and the headers that matter (Location for job polling,
// Retry-After for backpressure).
func relay(w http.ResponseWriter, status int, header http.Header, body []byte) {
	for _, h := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m := rt.jobOwner(id)
	if m == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{"unknown job"})
		return
	}
	url := m.base + "/v1/jobs/" + id
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	freq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	resp, err := rt.cfg.Client.Do(freq)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorJSON{"node unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorJSON{"node read: " + err.Error()})
		return
	}
	relay(w, resp.StatusCode, resp.Header, respBody)
}

// handleJobEvents proxies a job's SSE stream from its owning node,
// flushing event-by-event so live heartbeats stay live through the
// router.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m := rt.jobOwner(id)
	if m == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{"unknown job"})
		return
	}
	freq, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		m.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	resp, err := rt.cfg.Client.Do(freq)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorJSON{"node unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		relay(w, resp.StatusCode, resp.Header, respBody)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	ready := 0
	for _, m := range rt.members {
		if _, rdy, _, _ := m.snapshot(); rdy {
			ready++
		}
	}
	status := http.StatusOK
	if ready == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":       ready > 0,
		"nodes":       len(rt.members),
		"nodes_ready": ready,
	})
}

func (rt *Router) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = rt.metrics.WriteJSON(w)
}
