package sim

import (
	"math/rand"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/trace"
)

// RunEventTrace executes a trace on the event simulator and checks
// expected outputs, mirroring RunTrace for the cycle simulator. Unknown
// input cells are concretized per policy (KeepX leaves them X, which is
// what a testbench that does not drive a signal does).
func RunEventTrace(es *EventSim, tr *trace.Trace, opts RunOptions) *RunResult {
	es.Reset()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &RunResult{FirstFailure: -1}
	outNames := make([]string, len(tr.Outputs))
	for i, o := range tr.Outputs {
		outNames[i] = o.Name
	}
	for cycle := 0; cycle < tr.Len(); cycle++ {
		inputs := map[string]bv.XBV{}
		for i, sig := range tr.Inputs {
			v := tr.InputRows[cycle][i]
			if v.HasUnknown() {
				switch opts.Policy {
				case Randomize:
					v = bv.K(v.Resolve(bv.FromWords(sig.Width, []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()})))
				case Zero:
					v = bv.K(v.Resolve(bv.Zero(sig.Width)))
				}
			}
			inputs[sig.Name] = v
		}
		outs := es.Step(inputs, outNames)
		if es.OscErr != nil {
			// An oscillating simulation fails at this cycle.
			res.FirstFailure = cycle
			res.FailedSignal = "<oscillation>"
			res.Cycles++
			return res
		}
		row := make([]bv.XBV, len(tr.Outputs))
		for i, sig := range tr.Outputs {
			row[i] = outs[sig.Name]
		}
		res.Outputs = append(res.Outputs, row)
		res.Cycles++
		if res.FirstFailure < 0 {
			for i, sig := range tr.Outputs {
				if !outputMatches(tr.OutputRows[cycle][i], outs[sig.Name]) {
					res.FirstFailure = cycle
					res.FailedSignal = sig.Name
					break
				}
			}
			if res.FirstFailure >= 0 && !opts.RunAll {
				return res
			}
		}
	}
	return res
}

// RecordTrace simulates sys-like behaviour via the cycle simulator to
// produce a golden trace: it drives the given input rows and records the
// simulated outputs as the expected outputs. This is how benchmark
// testbenches are converted into I/O traces from ground-truth designs,
// as described in §6.1.
func RecordTrace(sim *CycleSim, inputs []trace.Signal, outputs []trace.Signal, rows [][]bv.XBV) *trace.Trace {
	tr := trace.New(inputs, outputs)
	for _, row := range rows {
		in := map[string]bv.XBV{}
		for i, sig := range inputs {
			in[sig.Name] = row[i]
		}
		outs := sim.Step(in)
		outRow := make([]bv.XBV, len(outputs))
		for i, sig := range outputs {
			outRow[i] = outs[sig.Name]
		}
		tr.AddRow(append([]bv.XBV{}, row...), outRow)
	}
	return tr
}
