package core

import (
	"sync"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/tsys"
)

// PrefixCache is the shared encode prefix of one repair: the register
// states the unmodified design reaches after each trace prefix. Every
// portfolio attempt needs exactly these states to seed its window
// encodings — a template's instrumentation is behaviour-preserving at
// φ = 0, so the "all changes off" prefix simulation the synthesizer used
// to run per attempt is the same computation for all of them. The cache
// runs it once, over the frontend's elaborated system, with one
// persistent simulator that extends monotonically; attempts on any
// worker read completed snapshots without re-simulating.
//
// Safe for concurrent use. Snapshots are returned by reference and must
// be treated as read-only (the synthesizer already folds them into the
// encoding as constants).
type PrefixCache struct {
	mu    sync.Mutex
	sys   *tsys.System
	tr    *trace.Trace
	sim   *sim.CycleSim
	snaps []map[string]bv.XBV

	// widths indexes the cached system's state names to their widths,
	// for the compatibility check.
	widths map[string]int

	simulated int64 // cycles actually simulated (the work saved is attempts×cycles − this)
	hits      int64 // stateAt calls answered without simulating
}

// NewPrefixCache builds the shared prefix cache for one (design, trace,
// initial state) triple. sys must be the uninstrumented elaborated
// system; init must assign every state (use Concretize).
func NewPrefixCache(sys *tsys.System, tr *trace.Trace, init map[string]bv.XBV) *PrefixCache {
	cs := sim.NewCycleSim(sys, sim.Zero, 0)
	for name, v := range init {
		cs.SetState(name, v)
	}
	widths := make(map[string]int, len(sys.States))
	for _, st := range sys.States {
		widths[st.Var.Name] = st.Var.Width
	}
	return &PrefixCache{
		sys:    sys,
		tr:     tr,
		sim:    cs,
		snaps:  []map[string]bv.XBV{cs.Snapshot()},
		widths: widths,
	}
}

// StateAt returns the register state after the first `cycles` trace rows
// of the unmodified design, extending the cache if needed. The second
// result is how many cycles this call had to simulate (0 on a cache
// hit) — callers fold it into their PrefixCycles statistic so the
// counter still measures total simulation work.
func (p *PrefixCache) StateAt(cycles int) (map[string]bv.XBV, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	simulated := 0
	for len(p.snaps) <= cycles {
		p.sim.Step(p.inputsAt(len(p.snaps) - 1))
		p.snaps = append(p.snaps, p.sim.Snapshot())
		simulated++
	}
	if simulated == 0 {
		p.hits++
	}
	p.simulated += int64(simulated)
	return p.snaps[cycles], simulated
}

func (p *PrefixCache) inputsAt(cycle int) map[string]bv.XBV {
	in := map[string]bv.XBV{}
	for i, sig := range p.tr.Inputs {
		in[sig.Name] = p.tr.InputRows[cycle][i]
	}
	return in
}

// Covers reports whether the cache's snapshots are valid start states
// for the given instrumented system: the state spaces must match
// exactly. A template that added or dropped registers (none of the
// current ones do) makes the attempt fall back to its private prefix
// simulation rather than risk a wrong start state.
func (p *PrefixCache) Covers(sys *tsys.System) bool {
	if len(sys.States) != len(p.widths) {
		return false
	}
	for _, st := range sys.States {
		if w, ok := p.widths[st.Var.Name]; !ok || w != st.Var.Width {
			return false
		}
	}
	return true
}

// Counters returns (cycles simulated, calls served from cache).
func (p *PrefixCache) Counters() (simulated, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.simulated, p.hits
}
