package sat

import (
	"math/rand"
	"testing"
	"time"
)

func mustSolve(t *testing.T, s *Solver, assumptions ...Lit) Status {
	t.Helper()
	st, err := s.Solve(assumptions...)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return st
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if st := mustSolve(t, s); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !s.Value(a) {
		t.Fatal("a should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a))
	if st := mustSolve(t, s); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := New()
	n := 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(PosLit(vars[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	if st := mustSolve(t, s); st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d should be true", i)
		}
	}
}

// pigeonhole adds the classic PHP(n+1, n) encoding, which is unsatisfiable.
func pigeonhole(s *Solver, pigeons, holes int) {
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = PosLit(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i1 := 0; i1 < pigeons; i1++ {
			for i2 := i1 + 1; i2 < pigeons; i2++ {
				s.AddClause(NegLit(p[i1][j]), NegLit(p[i2][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := mustSolve(t, s); st != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want unsat", n+1, n, st)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if st := mustSolve(t, s); st != Sat {
		t.Fatalf("PHP(5,5) = %v, want sat", st)
	}
}

// bruteForce decides a CNF over n vars by enumeration.
func bruteForce(n int, cnf [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>l.Var()&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nv := 4 + rng.Intn(9)
		nc := 3 + rng.Intn(nv*5)
		cnf := make([][]Lit, nc)
		for i := range cnf {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nv), rng.Intn(2) == 0)
			}
			cnf[i] = cl
		}
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := mustSolve(t, s)
		want := bruteForce(nv, cnf)
		if (got == Sat) != want {
			t.Fatalf("iter %d: got %v, brute force says sat=%v (nv=%d nc=%d)", iter, got, want, nv, nc)
		}
		if got == Sat {
			// Verify the model actually satisfies the formula.
			for ci, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %d", iter, ci)
				}
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(b), PosLit(c))

	if st := mustSolve(t, s, PosLit(a), NegLit(c)); st != Unsat {
		t.Fatalf("a & !c should be unsat, got %v", st)
	}
	// The solver must remain usable after an assumption failure.
	if st := mustSolve(t, s, PosLit(a)); st != Sat {
		t.Fatalf("a alone should be sat, got %v", st)
	}
	if !s.Value(b) || !s.Value(c) {
		t.Fatal("a implies b implies c")
	}
	if st := mustSolve(t, s, NegLit(c)); st != Sat {
		t.Fatalf("!c should be sat, got %v", st)
	}
	if s.Value(a) {
		t.Fatal("a must be false when !c assumed")
	}
}

func TestAssumptionsIncrementalMinimization(t *testing.T) {
	// Mimic the repair synthesizer's usage: a counter over selector bits
	// with decreasing bounds via assumptions.
	s := New()
	n := 6
	sel := make([]int, n)
	for i := range sel {
		sel[i] = s.NewVar()
	}
	// Require sel[1] | sel[3].
	s.AddClause(PosLit(sel[1]), PosLit(sel[3]))
	// Require sel[2].
	s.AddClause(PosLit(sel[2]))

	// "at most 1 set among all" encoded pairwise, guarded by an activation var.
	act := s.NewVar()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddClause(NegLit(act), NegLit(sel[i]), NegLit(sel[j]))
		}
	}
	if st := mustSolve(t, s, PosLit(act)); st != Unsat {
		t.Fatalf("at-most-1 with two required selectors must be unsat, got %v", st)
	}
	if st := mustSolve(t, s); st != Sat {
		t.Fatalf("without activation should be sat, got %v", st)
	}
}

func TestContradictoryAssumptionPair(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.NewVar()
	if st := mustSolve(t, s, PosLit(a), NegLit(a)); st != Unsat {
		t.Fatalf("contradictory assumptions = %v, want unsat", st)
	}
	if st := mustSolve(t, s); st != Sat {
		t.Fatalf("formula itself is sat, got %v", st)
	}
}

func TestAddClauseAfterLevelZeroConflict(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if ok := s.AddClause(NegLit(a)); ok {
		t.Fatal("adding the contradicting unit should report false")
	}
	if st := mustSolve(t, s); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestManySolveCallsReuseState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	nv := 12
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	var cnf [][]Lit
	for i := 0; i < 30; i++ {
		cl := []Lit{
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
		}
		cnf = append(cnf, cl)
		s.AddClause(cl...)
		got := mustSolve(t, s)
		want := bruteForce(nv, cnf)
		if (got == Sat) != want {
			t.Fatalf("after clause %d: got %v want sat=%v", i, got, want)
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Neg() {
		t.Fatalf("lit = %v", l)
	}
	if l.Not().Neg() || l.Not().Var() != 5 {
		t.Fatal("Not broken")
	}
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Fatal("status strings")
	}
}

func TestFailedAssumptionsReported(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), NegLit(b)) // !(a & b)
	st := mustSolve(t, s, PosLit(a), PosLit(b))
	if st != Unsat {
		t.Fatalf("status = %v", st)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("no failed assumptions reported")
	}
}

func TestSolveDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 11, 10) // hard instance
	s.Deadline = time.Now().Add(10 * time.Millisecond)
	start := time.Now()
	st, err := s.Solve()
	if err == nil && st == Unsat {
		t.Skip("machine solved PHP(11,10) within the deadline")
	}
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
}
