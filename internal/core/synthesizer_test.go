package core

import (
	"strings"
	"testing"
	"time"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/trace"
)

// buildSynth instruments a module with a template and prepares a
// synthesizer over a recorded trace.
func buildSynth(t *testing.T, buggySrc, goldenSrc string, tmpl Template,
	ins, outs []trace.Signal, rows [][]bv.XBV) (*Synthesizer, *VarTable) {
	t.Helper()
	tr := recordGolden(t, goldenSrc, ins, outs, rows)
	m := mustParse(t, buggySrc)
	ctx := smt.NewContext()
	counter := 0
	vars := NewVarTable(&counter)
	info := elaborateInfo(ctx, m, nil)
	instr, err := tmpl.Instrument(m, &Env{Info: info}, vars)
	if err != nil {
		t.Fatal(err)
	}
	isys, _, err := synth.Elaborate(ctx, instr, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSynthOptions()
	opts.Seed = 3
	init, ctr := Concretize(isys, tr, sim.Randomize, opts.Seed)
	return NewSynthesizer(ctx, isys, vars, ctr, init, opts), vars
}

func TestSolveWindowSamplesDistinctSolutions(t *testing.T) {
	// A bug with several minimal fixes: the constant 2 must become 1,
	// but alpha has freedom in the unchecked high bits? No — with full
	// checking the minimal solution is unique, so sampling must stop
	// after one solution.
	buggy := strings.Replace(goodCounter, "count + 1", "count + 2", 1)
	ins, outs := counterIO()
	s, vars := buildSynth(t, buggy, goodCounter, ReplaceLiterals{}, ins, outs, counterRows())
	sols, err := s.solveWindow(0, s.tr.Len(), s.init)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no solutions")
	}
	seen := map[string]bool{}
	for _, sol := range sols {
		key := ""
		for _, p := range vars.Phis {
			key += sol.Assign[p.Name].BinaryString()
		}
		for _, a := range vars.Alphas {
			key += ":" + sol.Assign[a.Name].BinaryString()
		}
		if seen[key] {
			t.Fatal("duplicate sampled solution (blocking clause failed)")
		}
		seen[key] = true
		if sol.Changes != sols[0].Changes {
			t.Fatalf("non-minimal sample: %d vs %d", sol.Changes, sols[0].Changes)
		}
	}
}

func TestSolveWindowUnsatForImpossibleWindow(t *testing.T) {
	// Force expected outputs no repair can produce: count must equal two
	// different values in one cycle... emulate by conflicting rows.
	ins, outs := counterIO()
	tr := trace.New(ins, outs)
	tr.AddRow([]bv.XBV{bv.KU(1, 1), bv.KU(1, 0)}, []bv.XBV{bv.X(4), bv.X(1)})
	// After reset, demand count == 5 with no enable: unreachable for any
	// single-literal change while also demanding overflow == 1.
	tr.AddRow([]bv.XBV{bv.KU(1, 1), bv.KU(1, 0)}, []bv.XBV{bv.KU(4, 5), bv.KU(1, 1)})
	tr.AddRow([]bv.XBV{bv.KU(1, 1), bv.KU(1, 0)}, []bv.XBV{bv.KU(4, 9), bv.KU(1, 0)})

	m := mustParse(t, goodCounter)
	ctx := smt.NewContext()
	counter := 0
	vars := NewVarTable(&counter)
	instr, err := (ReplaceLiterals{}).Instrument(m, &Env{Info: elaborateInfo(ctx, m, nil)}, vars)
	if err != nil {
		t.Fatal(err)
	}
	isys, _, err := synth.Elaborate(ctx, instr, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSynthOptions()
	init, ctr := Concretize(isys, tr, sim.Randomize, 1)
	s := NewSynthesizer(ctx, isys, vars, ctr, init, opts)
	sols, err := s.solveWindow(0, ctr.Len(), s.init)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Fatalf("impossible trace produced %d solutions", len(sols))
	}
}

func TestPrefixStateMatchesSimulation(t *testing.T) {
	ins, outs := counterIO()
	s, _ := buildSynth(t, buggyCounter, goodCounter, ReplaceLiterals{}, ins, outs, counterRows())
	// The prefix state after 3 cycles must equal a manual simulation.
	snap := s.prefixState(3)
	cs := s.newSim(zeroAssignment(s))
	for c := 0; c < 3; c++ {
		cs.Step(s.inputsAt(c))
	}
	for name, v := range cs.Snapshot() {
		if !snap[name].SameAs(v) {
			t.Fatalf("prefix state mismatch on %s: %v vs %v", name, snap[name], v)
		}
	}
}

func zeroAssignment(s *Synthesizer) Assignment {
	a := Assignment{}
	for _, p := range s.vars.Phis {
		a[p.Name] = bv.Zero(1)
	}
	for _, al := range s.vars.Alphas {
		a[al.Name] = bv.Zero(al.Width)
	}
	return a
}

// The Σφ > 3 rule: a template producing a large repair is kept only as a
// fallback; when no smaller repair exists it is still returned.
func TestLargeRepairUsedAsFallback(t *testing.T) {
	// Four separate literal errors need 4 changes (> 3).
	golden := `
module quad(input clk, input [7:0] a, output reg [7:0] w, x, y, z);
always @(posedge clk) begin
  w <= a + 8'd1;
  x <= a + 8'd2;
  y <= a + 8'd3;
  z <= a + 8'd4;
end
endmodule`
	buggy := `
module quad(input clk, input [7:0] a, output reg [7:0] w, x, y, z);
always @(posedge clk) begin
  w <= a + 8'd11;
  x <= a + 8'd12;
  y <= a + 8'd13;
  z <= a + 8'd14;
end
endmodule`
	ins := []trace.Signal{{Name: "a", Width: 8}}
	outs := []trace.Signal{{Name: "w", Width: 8}, {Name: "x", Width: 8},
		{Name: "y", Width: 8}, {Name: "z", Width: 8}}
	var rows [][]bv.XBV
	for i := 0; i < 6; i++ {
		rows = append(rows, []bv.XBV{bv.KU(8, uint64(i*31))})
	}
	tr := recordGolden(t, golden, ins, outs, rows)
	res := Repair(mustParse(t, buggy), tr, repairOpts())
	if res.Status != StatusRepaired {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.Changes != 4 {
		t.Fatalf("changes = %d, want 4", res.Changes)
	}
	checkRepairPasses(t, res, tr)
}

func TestRepairTimeoutStatus(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	opts := repairOpts()
	opts.Timeout = 1 * time.Nanosecond
	res := Repair(mustParse(t, buggyCounter), tr, opts)
	if res.Status != StatusTimeout && res.Status != StatusCannotRepair {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestValidateAgreesWithEngineChecks(t *testing.T) {
	ins, outs := counterIO()
	s, vars := buildSynth(t, buggyCounter, goodCounter, CondOverwrite{}, ins, outs, counterRows())
	sol, err := s.Windowed(1)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("no solution")
	}
	if !s.Validate(sol.Assign).Passed() {
		t.Fatal("returned solution does not validate")
	}
	if got := vars.Changes(sol.Assign); got != sol.Changes {
		t.Fatalf("change accounting mismatch: %d vs %d", got, sol.Changes)
	}
}
