package verilog

import "fmt"

// ParseError is a parse failure with a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("verilog: %v: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token
	i    int
}

// Parse parses Verilog source containing one or more modules.
func Parse(src string) ([]*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var mods []*Module
	for !p.atEOF() {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, &ParseError{Pos: Pos{1, 1}, Msg: "no module found"}
	}
	return mods, nil
}

// ParseModule parses a source file expected to contain exactly one module.
func ParseModule(src string) (*Module, error) {
	mods, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(mods) != 1 {
		return nil, fmt.Errorf("verilog: expected one module, found %d", len(mods))
	}
	return mods[0], nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) peekIs(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.peekIs(text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if p.peekIs(text) {
		return p.next(), nil
	}
	return token{}, &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf("expected %q, found %v", text, p.cur())}
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind == tokIdent {
		return p.next(), nil
	}
	return token{}, &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf("expected identifier, found %v", p.cur())}
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseModule() (*Module, error) {
	start, err := p.expect("module")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Pos: start.pos, Name: name.text}

	// Optional #(parameter ...) header.
	if p.accept("#") {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			if p.accept("parameter") {
			}
			prm, err := p.parseParamBody(false)
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, prm...)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}

	if p.accept("(") {
		if !p.peekIs(")") {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	for !p.peekIs("endmodule") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of file inside module %s", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

// parsePortList handles both ANSI (with directions/types inline) and
// traditional (names only) port lists.
func (p *parser) parsePortList(m *Module) error {
	dir := DirNone
	kind := KindWire
	var msb, lsb Expr
	signed := false
	for {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && (t.text == "input" || t.text == "output" || t.text == "inout"):
			p.next()
			switch t.text {
			case "input":
				dir = DirInput
			case "output":
				dir = DirOutput
			default:
				dir = DirInout
			}
			kind = KindWire
			signed = false
			msb, lsb = nil, nil
			if p.accept("reg") {
				kind = KindReg
			} else {
				p.accept("wire")
			}
			if p.accept("signed") {
				signed = true
			}
			if p.peekIs("[") {
				var err error
				msb, lsb, err = p.parseRange()
				if err != nil {
					return err
				}
			}
			continue
		case t.kind == tokIdent:
			p.next()
			m.Ports = append(m.Ports, t.text)
			if dir != DirNone {
				m.Items = append(m.Items, &Decl{
					Pos: t.pos, Dir: dir, Kind: kind, MSB: cloneExpr(msb), LSB: cloneExpr(lsb),
					Name: t.text, Signed: signed,
				})
			}
			if !p.accept(",") {
				return nil
			}
		default:
			return p.errorf("unexpected token %v in port list", t)
		}
	}
}

func (p *parser) parseRange() (msb, lsb Expr, err error) {
	if _, err = p.expect("["); err != nil {
		return nil, nil, err
	}
	msb, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err = p.expect(":"); err != nil {
		return nil, nil, err
	}
	lsb, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err = p.expect("]"); err != nil {
		return nil, nil, err
	}
	return msb, lsb, nil
}

func (p *parser) parseItem() ([]Item, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword:
		switch t.text {
		case "input", "output", "inout":
			return p.parsePortDecl()
		case "wire", "reg":
			return p.parseNetDecl()
		case "integer":
			return p.parseIntegerDecl()
		case "parameter":
			p.next()
			items, err := p.parseParamBody(false)
			if err != nil {
				return nil, err
			}
			_, err = p.expect(";")
			return items, err
		case "localparam":
			p.next()
			items, err := p.parseParamBody(true)
			if err != nil {
				return nil, err
			}
			_, err = p.expect(";")
			return items, err
		case "assign":
			return p.parseContAssign()
		case "always":
			return p.parseAlways()
		case "initial":
			p.next()
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return []Item{&Initial{Pos: t.pos, Body: body}}, nil
		default:
			return nil, p.errorf("unsupported module item %v", t)
		}
	case t.kind == tokIdent:
		return p.parseInstance()
	case t.kind == tokSystem:
		// Tolerate stray system tasks at module level by skipping them.
		p.skipToSemi()
		return nil, nil
	}
	return nil, p.errorf("unexpected token %v at module level", t)
}

func (p *parser) skipToSemi() {
	for !p.atEOF() && !p.accept(";") {
		p.next()
	}
}

func (p *parser) parsePortDecl() ([]Item, error) {
	t := p.next()
	dir := map[string]Dir{"input": DirInput, "output": DirOutput, "inout": DirInout}[t.text]
	kind := KindWire
	if p.accept("reg") {
		kind = KindReg
	} else {
		p.accept("wire")
	}
	signed := p.accept("signed")
	var msb, lsb Expr
	var err error
	if p.peekIs("[") {
		msb, lsb, err = p.parseRange()
		if err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		items = append(items, &Decl{Pos: name.pos, Dir: dir, Kind: kind,
			MSB: cloneExpr(msb), LSB: cloneExpr(lsb), Name: name.text, Signed: signed})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *parser) parseNetDecl() ([]Item, error) {
	t := p.next()
	kind := KindWire
	if t.text == "reg" {
		kind = KindReg
	}
	signed := p.accept("signed")
	var msb, lsb Expr
	var err error
	if p.peekIs("[") {
		msb, lsb, err = p.parseRange()
		if err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &Decl{Pos: name.pos, Kind: kind, MSB: cloneExpr(msb), LSB: cloneExpr(lsb),
			Name: name.text, Signed: signed}
		if p.accept("=") {
			d.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if p.peekIs("[") {
			// Memory dimension: reg [7:0] mem [0:15];
			if kind != KindReg {
				return nil, p.errorf("array dimension on a wire")
			}
			d.ArrMSB, d.ArrLSB, err = p.parseRange()
			if err != nil {
				return nil, err
			}
		}
		items = append(items, d)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *parser) parseIntegerDecl() ([]Item, error) {
	t := p.next()
	var items []Item
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		items = append(items, &Decl{Pos: t.pos, Kind: KindReg, Signed: true,
			MSB: MkNumber(32, 31), LSB: MkNumber(32, 0), Name: name.text})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *parser) parseParamBody(local bool) ([]Item, error) {
	var msb, lsb Expr
	var err error
	if p.peekIs("[") {
		msb, lsb, err = p.parseRange()
		if err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &Param{Pos: name.pos, Local: local, Name: name.text,
			MSB: cloneExpr(msb), LSB: cloneExpr(lsb), Value: val})
		// A comma may continue the same parameter statement; the caller
		// handles header-style lists, so stop before a new keyword.
		if p.peekIs(",") && p.i+2 < len(p.toks) &&
			p.toks[p.i+1].kind == tokIdent && p.toks[p.i+2].kind == tokPunct && p.toks[p.i+2].text == "=" {
			p.next()
			continue
		}
		break
	}
	return items, nil
}

func (p *parser) parseContAssign() ([]Item, error) {
	t := p.next()
	var items []Item
	for {
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		if p.accept("#") {
			if _, err := p.parsePrimary(); err != nil {
				return nil, err
			}
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &ContAssign{Pos: t.pos, LHS: lhs, RHS: rhs})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *parser) parseAlways() ([]Item, error) {
	t := p.next()
	a := &Always{Pos: t.pos}
	if p.accept("@") {
		if p.accept("*") {
			a.Star = true
		} else {
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			if p.accept("*") {
				a.Star = true
			} else {
				for {
					item := SenseItem{Edge: EdgeLevel}
					if p.accept("posedge") {
						item.Edge = EdgePos
					} else if p.accept("negedge") {
						item.Edge = EdgeNeg
					}
					sig, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					item.Signal = sig.text
					a.Senses = append(a.Senses, item)
					if !p.accept("or") && !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return []Item{a}, nil
}

func (p *parser) parseInstance() ([]Item, error) {
	mod, _ := p.expectIdent()
	inst := &Instance{Pos: mod.pos, ModName: mod.text}
	if p.accept("#") {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		conns, err := p.parseConnList()
		if err != nil {
			return nil, err
		}
		inst.Params = conns
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst.Name = name.text
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.peekIs(")") {
		conns, err := p.parseConnList()
		if err != nil {
			return nil, err
		}
		inst.Conns = conns
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return []Item{inst}, nil
}

func (p *parser) parseConnList() ([]PortConn, error) {
	var conns []PortConn
	for {
		if p.accept(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			var e Expr
			if !p.peekIs(")") {
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			conns = append(conns, PortConn{Name: name.text, Expr: e})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			conns = append(conns, PortConn{Expr: e})
		}
		if !p.accept(",") {
			break
		}
	}
	return conns, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.accept(";"):
		return &NullStmt{Pos: t.pos}, nil
	case p.accept("begin"):
		b := &Block{Pos: t.pos}
		if p.accept(":") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			b.Name = name.text
		}
		for !p.accept("end") {
			if p.atEOF() {
				return nil, p.errorf("unexpected end of file in block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		return b, nil
	case p.accept("if"):
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &If{Pos: t.pos, Cond: cond, Then: then}
		if p.accept("else") {
			s.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.peekIs("case") || p.peekIs("casez") || p.peekIs("casex"):
		return p.parseCase()
	case p.peekIs("for"):
		return p.parseFor()
	case t.kind == tokSystem:
		p.skipToSemi()
		return &NullStmt{Pos: t.pos}, nil
	case p.accept("#"):
		// Standalone delay before a statement: parse and ignore.
		if _, err := p.parsePrimary(); err != nil {
			return nil, err
		}
		return p.parseStmt()
	case t.kind == tokIdent || (t.kind == tokPunct && t.text == "{"):
		return p.parseAssignStmt()
	}
	return nil, p.errorf("unexpected token %v in statement", t)
}

func (p *parser) parseCase() (Stmt, error) {
	t := p.next()
	kind := CaseExact
	switch t.text {
	case "casez":
		kind = CaseZ
	case "casex":
		kind = CaseX
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	c := &Case{Pos: t.pos, Kind: kind, Subject: subject}
	for !p.accept("endcase") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of file in case")
		}
		var item CaseItem
		if p.accept("default") {
			p.accept(":")
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		c.Items = append(c.Items, item)
	}
	return c, nil
}

// parseFor parses "for (v = init; cond; v = step) stmt".
func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	name2, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if name2.text != name.text {
		return nil, &ParseError{Pos: name2.pos, Msg: fmt.Sprintf("for update assigns %q, loop variable is %q", name2.text, name.text)}
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	step, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &For{Pos: t.pos, Var: name.text, Init: init, Cond: cond, Step: step, Body: body}, nil
}

func (p *parser) parseAssignStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	blocking := true
	if p.accept("<=") {
		blocking = false
	} else if _, err := p.expect("="); err != nil {
		return nil, err
	}
	var delay Expr
	if p.accept("#") {
		delay, err = p.parsePrimary()
		if err != nil {
			return nil, err
		}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &Assign{Pos: t.pos, LHS: lhs, RHS: rhs, Blocking: blocking, Delay: delay}, nil
}

// parseLValue parses an assignment target: identifier, bit/part select
// or concatenation of lvalues.
func (p *parser) parseLValue() (Expr, error) {
	t := p.cur()
	if p.accept("{") {
		c := &Concat{Pos: t.pos}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect("}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var e Expr = &Ident{Pos: name.pos, Name: name.text}
	for p.peekIs("[") {
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &PartSelect{Pos: open.pos, X: e, MSB: first, LSB: lsb}
		} else {
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{Pos: open.pos, X: e, Idx: first}
		}
	}
	return e, nil
}

// Expression parsing with precedence climbing.

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "~^": 4, "^~": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.peekIs("?") {
		return cond, nil
	}
	q := p.next()
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Pos: q.pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		op := t.text
		// Normalize SystemVerilog-isms our semantics treat identically.
		switch op {
		case "===":
			op = "=="
		case "!==":
			op = "!="
		case "^~":
			op = "~^"
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.pos, Op: op, X: lhs, Y: rhs}
	}
}

var unaryOps = map[string]bool{
	"~": true, "!": true, "-": true, "+": true,
	"&": true, "|": true, "^": true, "~&": true, "~|": true, "~^": true,
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && unaryOps[t.text] {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &Unary{Pos: t.pos, Op: t.text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peekIs("[") {
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &PartSelect{Pos: open.pos, X: e, MSB: first, LSB: lsb}
		} else {
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{Pos: open.pos, X: e, Idx: first}
		}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		n, err := ParseNumber(t.text)
		if err != nil {
			return nil, &ParseError{Pos: t.pos, Msg: err.Error()}
		}
		n.Pos = t.pos
		return n, nil
	case t.kind == tokIdent:
		p.next()
		return &Ident{Pos: t.pos, Name: t.text}, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept("{"):
		// Either a concat {a, b} or a replication {n{a}}.
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peekIs("{") {
			p.next()
			r := &Repeat{Pos: t.pos, Count: first}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				r.Parts = append(r.Parts, e)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
			return r, nil
		}
		c := &Concat{Pos: t.pos, Parts: []Expr{first}}
		for p.accept(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect("}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errorf("unexpected token %v in expression", t)
}
