package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"rtlrepair/internal/obs"
	"rtlrepair/internal/serve"
)

// NodeConfig tunes one fleet node: a serve.Server plus its durability
// layers.
type NodeConfig struct {
	// Name identifies the node to the router's rendezvous hash and in
	// /debugz/fleet. Required when the node joins a fleet; a router and
	// its nodes must agree on names or routing degenerates to random.
	Name string
	// Serve configures the wrapped repair server. Queue/Results/Artifacts
	// are normally left nil — the node installs shared stores itself when
	// ArtifactDir is set.
	Serve serve.Config
	// WALPath enables the write-ahead job log ("" disables): every
	// admitted job is durably logged before acknowledgement and replayed
	// after a crash.
	WALPath string
	// ArtifactDir enables the shared content-addressed store (""
	// disables): results and frontend artifacts are published there, so
	// every node sharing the directory — and this node after a restart —
	// is warmed by any node's work.
	ArtifactDir string
	// ReplayRetry is the backoff between submission retries while
	// replaying a WAL into a full queue. Default 50ms.
	ReplayRetry time.Duration
}

// Node is one cluster member: a serve.Server wrapped with a write-ahead
// job log and a shared artifact store. Create with NewNode, serve its
// Handler, stop with Shutdown.
type Node struct {
	name    string
	srv     *serve.Server
	wal     *WAL
	cas     *CAS
	metrics *obs.Registry
	retry   time.Duration
}

// NewNode builds the node: opens the CAS (if any), layers the shared
// stores under the serve caches, opens the WAL, and kicks off replay of
// any jobs a previous process accepted but never finished. The node
// reports not-ready until replay has re-admitted every pending job.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Serve.Obs.Metrics == nil {
		cfg.Serve.Obs.Metrics = obs.NewRegistry()
	}
	metrics := cfg.Serve.Obs.Metrics
	n := &Node{name: cfg.Name, metrics: metrics, retry: cfg.ReplayRetry}
	if n.retry <= 0 {
		n.retry = 50 * time.Millisecond
	}
	if cfg.ArtifactDir != "" {
		cas, err := OpenCAS(cfg.ArtifactDir)
		if err != nil {
			return nil, err
		}
		n.cas = cas
		// Mirror serve's cache-size defaults (serve.Config.withDefaults
		// only applies them when the store fields are nil, and we are
		// about to fill them in).
		resultSize, artifactSize := cfg.Serve.ResultCacheSize, cfg.Serve.ArtifactCacheSize
		if resultSize == 0 {
			resultSize = 256
		}
		if artifactSize == 0 {
			artifactSize = 64
		}
		if cfg.Serve.Results == nil {
			cfg.Serve.Results = serve.NewSharedResultStore(
				serve.NewLRUResultStore(resultSize, metrics), cas, metrics)
		}
		if cfg.Serve.Artifacts == nil {
			cfg.Serve.Artifacts = serve.NewSharedArtifactStore(
				serve.NewLRUArtifactStore(artifactSize, metrics), cas, metrics)
		}
	}
	n.srv = serve.New(cfg.Serve)
	if cfg.WALPath != "" {
		wal, pending, err := OpenWAL(cfg.WALPath)
		if err != nil {
			n.srv.Shutdown(context.Background())
			return nil, err
		}
		n.wal = wal
		metrics.SetGauge("fleet.wal.recovered", float64(len(pending)))
		if len(pending) > 0 {
			n.srv.SetReady(false)
			go n.replay(pending)
		}
	}
	return n, nil
}

// Server exposes the wrapped serve.Server (tests and embedders).
func (n *Node) Server() *serve.Server { return n.srv }

// Submit admits a job WAL-first: the accept record is durable before
// the server sees the job, so a crash at any later point replays it.
// Submission failures append a cancelling done record.
func (n *Node) Submit(req *serve.Request) (*serve.Job, error) {
	if n.wal == nil {
		return n.srv.Submit(req)
	}
	key := serve.ResultKey(req)
	if err := n.wal.Accept(key, req); err != nil {
		return nil, err
	}
	job, err := n.srv.Submit(req)
	if err != nil {
		// The job never entered the server; cancel the accept so restart
		// does not replay a rejected submission.
		n.wal.Done(key)
		return nil, err
	}
	n.watch(job, key)
	return job, nil
}

// watch appends the done record once the job is terminal. Cached jobs
// are terminal at admission, so the goroutine exits immediately.
func (n *Node) watch(job *serve.Job, key string) {
	go func() {
		<-job.Done()
		n.wal.Done(key)
	}()
}

// replay re-admits pending jobs in their original order. A full queue
// is retried with backoff — these jobs survived a crash, they are not
// dropped for transient backpressure. Unreplayable jobs (validation
// failures from an older wire format, a draining server) are cancelled
// and counted. Readiness returns once every pending job is re-admitted.
func (n *Node) replay(pending []*serve.Request) {
	for _, req := range pending {
		key := serve.ResultKey(req)
		for {
			job, err := n.srv.Submit(req)
			if err == nil {
				n.metrics.Add("fleet.wal.replayed", 1)
				n.watch(job, key)
				break
			}
			if errors.Is(err, serve.ErrQueueFull) {
				time.Sleep(n.retry)
				continue
			}
			n.wal.Done(key)
			n.metrics.Add("fleet.wal.replay_dropped", 1)
			break
		}
	}
	n.srv.SetReady(true)
}

// Shutdown drains the server, then closes the WAL. Jobs still pending
// at a deadline-forced shutdown stay in the log for the next open.
func (n *Node) Shutdown(ctx context.Context) error {
	err := n.srv.Shutdown(ctx)
	if n.wal != nil {
		if werr := n.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// NodeDebug is the GET /debugz/node payload: everything the router's
// /debugz/fleet aggregates about one member.
type NodeDebug struct {
	Name      string      `json:"name"`
	Stats     serve.Stats `json:"stats"`
	WAL       *WALStats   `json:"wal,omitempty"`
	CAS       *CASStats   `json:"cas,omitempty"`
	Stalled   float64     `json:"stalled"`
	Accepted  int64       `json:"accepted"`
	Completed int64       `json:"completed"`
	Cached    int64       `json:"cached"`
	Deduped   int64       `json:"deduped"`
	Replayed  int64       `json:"replayed"`
}

// Debug snapshots the node for /debugz/node.
func (n *Node) Debug() NodeDebug {
	d := NodeDebug{
		Name:      n.name,
		Stats:     n.srv.Snapshot(),
		Stalled:   n.metrics.Gauge("serve.jobs.stalled"),
		Accepted:  n.metrics.Counter("serve.jobs.accepted"),
		Completed: n.metrics.Counter("serve.jobs.completed"),
		Cached:    n.metrics.Counter("serve.jobs.cached"),
		Deduped:   n.metrics.Counter("serve.jobs.deduped"),
		Replayed:  n.metrics.Counter("fleet.wal.replayed"),
	}
	if n.wal != nil {
		ws := n.wal.Stats()
		d.WAL = &ws
	}
	if n.cas != nil {
		cs := n.cas.Stats()
		d.CAS = &cs
	}
	return d
}

// maxBodyBytes mirrors serve's submission body bound.
const maxBodyBytes = 64 << 20

// Handler returns the node's HTTP API: the full serve API with the
// submission path rerouted through the WAL, plus GET /debugz/node.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repair", n.handleSubmit)
	mux.HandleFunc("GET /debugz/node", n.handleDebug)
	mux.Handle("/", n.srv.Handler())
	return mux
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"body: " + err.Error()})
		return
	}
	job, err := n.Submit(&req)
	switch {
	case err == nil:
	case serve.IsBadRequest(err):
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	case errors.Is(err, serve.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(n.srv.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorJSON{err.Error()})
		return
	case errors.Is(err, serve.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
		}
	}
	v := job.View()
	status := http.StatusOK
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	if v.State != serve.StateDone {
		status = http.StatusAccepted
	}
	writeJSON(w, status, v)
}

func (n *Node) handleDebug(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, n.Debug())
}
