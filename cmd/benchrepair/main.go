// Command benchrepair tracks the repair engine's performance across PRs:
//
//	benchrepair [-designs counter_k1,sdram_w1] [-workers 4] [-reps 3] [-out BENCH_repair.json]
//
// For each design it runs the full repair flow sequentially (workers=1)
// and with the parallel portfolio, and records wall-clock times plus a
// modeled portfolio makespan derived from the sequential per-attempt
// durations (greedy list scheduling onto the requested worker count).
// The model matters on hosts with fewer cores than workers — there the
// measured parallel time reflects time-slicing, not the overlap a
// multi-core machine would get.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"rtlrepair/internal/bench"
	"rtlrepair/internal/core"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

type designReport struct {
	Name    string  `json:"name"`
	Status  string  `json:"status"`
	SeqMS   float64 `json:"sequential_ms"`
	ParMS   float64 `json:"parallel_ms"`
	Workers int     `json:"workers"`
	// AttemptMS is the sequential duration of each (pass, template)
	// attempt, in portfolio order.
	AttemptMS []float64 `json:"attempt_ms"`
	// ModeledParMS schedules the sequential attempt durations onto
	// `workers` idealized cores (greedy, portfolio order).
	ModeledParMS    float64 `json:"modeled_parallel_ms"`
	MeasuredSpeedup float64 `json:"measured_speedup"`
	ModeledSpeedup  float64 `json:"modeled_speedup"`
	// CNF size and search effort aggregated over every solver of the
	// sequential run, with the abstract-interpretation simplifier on
	// (default) and off — the A/B that prices the absint pass.
	CNFVars            int64   `json:"cnf_vars"`
	CNFClauses         int64   `json:"cnf_clauses"`
	CNFVarsNoAbsint    int64   `json:"cnf_vars_no_absint"`
	CNFClausesNoAbsint int64   `json:"cnf_clauses_no_absint"`
	CNFVarReduction    float64 `json:"cnf_var_reduction_pct"`
	CNFClauseReduction float64 `json:"cnf_clause_reduction_pct"`
	SATConflicts       int64   `json:"sat_conflicts"`
	SATPropagations    int64   `json:"sat_propagations"`
	// PhaseMS is the median total time per observability phase (span
	// name) across `reps` traced sequential runs, in milliseconds. The
	// traced runs are separate from the timing runs, so the reported
	// wall-clock numbers stay free of tracing overhead.
	PhaseMS map[string]float64 `json:"phase_ms"`
}

type report struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Reps       int            `json:"reps"`
	Designs    []designReport `json:"designs"`
	// Summary speedups aggregate total sequential vs. parallel time.
	TotalSeqMS             float64 `json:"total_sequential_ms"`
	TotalParMS             float64 `json:"total_parallel_ms"`
	TotalMeasuredSpeedup   float64 `json:"total_measured_speedup"`
	TotalModeledSpeedup    float64 `json:"total_modeled_speedup"`
	MeasurementLimitations string  `json:"measurement_limitations,omitempty"`
}

func main() {
	var (
		designs = flag.String("designs", "counter_k1,sdram_w1,fsm_w1,i2c_w2", "comma-separated benchmark names")
		workers = flag.Int("workers", 4, "portfolio workers for the parallel runs")
		reps    = flag.Int("reps", 3, "repetitions per configuration (median reported)")
		out     = flag.String("out", "BENCH_repair.json", "output JSON path")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := ocli.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepair:", err)
		os.Exit(1)
	}

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: *workers, Reps: *reps}
	if rep.GOMAXPROCS < *workers {
		rep.MeasurementLimitations = fmt.Sprintf(
			"host exposes %d CPU(s) for %d workers: measured parallel times reflect time-slicing; use modeled_speedup for the overlap win",
			rep.GOMAXPROCS, *workers)
	}

	var modeledTotal float64
	for _, name := range strings.Split(*designs, ",") {
		name = strings.TrimSpace(name)
		bm := bench.ByName(name)
		if bm == nil {
			fmt.Fprintf(os.Stderr, "benchrepair: unknown design %s\n", name)
			os.Exit(1)
		}
		dr := measure(bm, *workers, *reps, ocli.Scope())
		rep.Designs = append(rep.Designs, dr)
		rep.TotalSeqMS += dr.SeqMS
		rep.TotalParMS += dr.ParMS
		modeledTotal += dr.ModeledParMS
		fmt.Fprintf(os.Stderr, "%-12s seq %8.1fms  par %8.1fms  modeled %8.1fms  (measured %.2fx, modeled %.2fx)\n",
			name, dr.SeqMS, dr.ParMS, dr.ModeledParMS, dr.MeasuredSpeedup, dr.ModeledSpeedup)
		fmt.Fprintf(os.Stderr, "%-12s cnf %d vars %d clauses (absint off: %d / %d, reduction %.1f%% / %.1f%%)\n",
			"", dr.CNFVars, dr.CNFClauses, dr.CNFVarsNoAbsint, dr.CNFClausesNoAbsint,
			dr.CNFVarReduction, dr.CNFClauseReduction)
	}
	if rep.TotalParMS > 0 {
		rep.TotalMeasuredSpeedup = rep.TotalSeqMS / rep.TotalParMS
	}
	if modeledTotal > 0 {
		rep.TotalModeledSpeedup = rep.TotalSeqMS / modeledTotal
	}

	if err := ocli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepair:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrepair:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepair:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func measure(bm *bench.Benchmark, workers, reps int, sc obs.Scope) designReport {
	tr, err := bm.Trace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrepair: %s: %v\n", bm.Name, err)
		os.Exit(1)
	}
	m, err := bm.BuggyModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrepair: %s: %v\n", bm.Name, err)
		os.Exit(1)
	}
	lib, _ := bm.LibModules()
	opts := core.Options{
		Policy:  sim.Randomize,
		Seed:    1,
		Timeout: 120 * time.Second,
		Lib:     lib,
	}

	// The timing runs honor an explicitly requested -trace-out/-metrics-out
	// scope; with the flags unset sc is zero and tracing stays disabled, so
	// the default timings are overhead-free.
	run := func(w int) (float64, *core.Result) {
		o := opts
		o.Workers = w
		var times []float64
		var last *core.Result
		for i := 0; i < reps; i++ {
			start := time.Now()
			last = core.RepairCtx(obs.NewContext(context.Background(), sc), m, tr, o)
			times = append(times, float64(time.Since(start).Microseconds())/1000)
		}
		sort.Float64s(times)
		return times[len(times)/2], last
	}

	seqMS, seqRes := run(1)
	parMS, _ := run(workers)

	dr := designReport{
		Name:    bm.Name,
		Status:  seqRes.Status.String(),
		SeqMS:   seqMS,
		ParMS:   parMS,
		Workers: workers,
		PhaseMS: phaseMedians(m, tr, opts, reps),
	}
	for _, at := range seqRes.PerTemplate {
		dr.AttemptMS = append(dr.AttemptMS, float64(at.Duration.Microseconds())/1000)
	}
	dr.ModeledParMS = makespan(dr.AttemptMS, workers)
	if parMS > 0 {
		dr.MeasuredSpeedup = seqMS / parMS
	}
	if dr.ModeledParMS > 0 {
		dr.ModeledSpeedup = seqMS / dr.ModeledParMS
	}

	dr.CNFVars, dr.CNFClauses, dr.SATConflicts, dr.SATPropagations = aggregateSAT(seqRes)
	noAbs := opts
	noAbs.Workers = 1
	noAbs.NoAbsint = true
	dr.CNFVarsNoAbsint, dr.CNFClausesNoAbsint, _, _ = aggregateSAT(core.Repair(m, tr, noAbs))
	if dr.CNFVarsNoAbsint > 0 {
		dr.CNFVarReduction = 100 * (1 - float64(dr.CNFVars)/float64(dr.CNFVarsNoAbsint))
	}
	if dr.CNFClausesNoAbsint > 0 {
		dr.CNFClauseReduction = 100 * (1 - float64(dr.CNFClauses)/float64(dr.CNFClausesNoAbsint))
	}
	return dr
}

// phaseMedians runs `reps` traced sequential repairs and reports the
// median total time of each observability phase (per span name). These
// runs are separate from the timing runs so that tracing overhead never
// pollutes the reported wall-clock medians.
func phaseMedians(m *verilog.Module, tr *trace.Trace, opts core.Options, reps int) map[string]float64 {
	opts.Workers = 1
	samples := map[string][]float64{}
	for i := 0; i < reps; i++ {
		t := obs.New()
		ctx := obs.NewContext(context.Background(), obs.Scope{Tracer: t})
		core.RepairCtx(ctx, m, tr, opts)
		for name, ps := range t.PhaseTotals() {
			samples[name] = append(samples[name], float64(ps.Total.Microseconds())/1000)
		}
	}
	out := map[string]float64{}
	for name, times := range samples {
		sort.Float64s(times)
		out[name] = times[len(times)/2]
	}
	return out
}

// aggregateSAT sums the CNF size and search counters over every template
// attempt of a repair run.
func aggregateSAT(res *core.Result) (vars, clauses, conflicts, props int64) {
	for _, at := range res.PerTemplate {
		vars += at.Stats.SAT.Vars
		clauses += at.Stats.SAT.Clauses
		conflicts += at.Stats.SAT.Conflicts
		props += at.Stats.SAT.Propagations
	}
	return
}

// makespan greedily schedules attempt durations onto w idealized cores in
// portfolio order: each attempt starts on the earliest-free core, and the
// makespan is the latest completion. This is the wall-clock a w-core host
// would see with perfect overlap and the sequential engine's work set.
func makespan(durations []float64, w int) float64 {
	if len(durations) == 0 || w < 1 {
		return 0
	}
	cores := make([]float64, w)
	for _, d := range durations {
		min := 0
		for i := 1; i < w; i++ {
			if cores[i] < cores[min] {
				min = i
			}
		}
		cores[min] += d
	}
	max := cores[0]
	for _, c := range cores[1:] {
		if c > max {
			max = c
		}
	}
	return max
}
