// Package cirfix reimplements the CirFix baseline (Ahmad et al.,
// ASPLOS 2022) as described in that paper and in §6 of RTL-Repair: a
// generate-and-validate genetic repair loop whose mutation operators
// mirror CirFix's repair templates (invert conditionals, perturb
// constants, swap branches, toggle blocking/non-blocking, edit
// sensitivity lists, insert assignments, tweak operators, delete
// statements) and whose fitness function counts matching testbench
// output values under event-driven simulation. Because candidates are
// validated only against the simulation, CirFix can — exactly as the
// paper observes — produce repairs that fix the simulation while
// breaking the synthesized circuit.
package cirfix

import (
	"math/rand"
	"time"

	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

// MutKind enumerates mutation operators.
type MutKind int

// Mutation operators, mirroring CirFix's template set.
const (
	MutInvertCond MutKind = iota
	MutPerturbLiteral
	MutSwapBranches
	MutToggleBlocking
	MutSenseList
	MutInsertAssign
	MutChangeBinOp
	MutSwapOperands
	MutDeleteStmt
	mutKinds
)

func (k MutKind) String() string {
	switch k {
	case MutInvertCond:
		return "invert-cond"
	case MutPerturbLiteral:
		return "perturb-literal"
	case MutSwapBranches:
		return "swap-branches"
	case MutToggleBlocking:
		return "toggle-blocking"
	case MutSenseList:
		return "sense-list"
	case MutInsertAssign:
		return "insert-assign"
	case MutChangeBinOp:
		return "change-binop"
	case MutSwapOperands:
		return "swap-operands"
	case MutDeleteStmt:
		return "delete-stmt"
	}
	return "?"
}

// Mutation is one genome element. Target selects a site (modulo the
// number of compatible sites); Param carries operator-specific data.
type Mutation struct {
	Kind   MutKind
	Target int
	Param  uint64
}

// Options configures the genetic search.
type Options struct {
	Seed        int64
	PopSize     int
	Generations int
	Timeout     time.Duration
	// Policy concretizes don't-care inputs during fitness simulation.
	Policy sim.UnknownPolicy
	Lib    map[string]*verilog.Module
}

// DefaultOptions roughly matches CirFix's published configuration scaled
// to this framework.
func DefaultOptions() Options {
	return Options{PopSize: 24, Generations: 60, Timeout: 60 * time.Second, Policy: sim.Randomize}
}

// Status classifies the outcome.
type Status int

// Outcomes.
const (
	StatusRepaired Status = iota
	StatusCannotRepair
	StatusTimeout
)

func (s Status) String() string {
	switch s {
	case StatusRepaired:
		return "repaired"
	case StatusCannotRepair:
		return "cannot-repair"
	default:
		return "timeout"
	}
}

// Result reports a genetic repair run.
type Result struct {
	Status      Status
	Repaired    *verilog.Module
	Changes     int // genome length of the winning individual
	Generations int
	Evaluations int
	BestFitness float64
	Duration    time.Duration
	Genome      []Mutation
}

type individual struct {
	genome  []Mutation
	fitness float64
}

// Repair runs the genetic repair loop.
func Repair(m *verilog.Module, tr *trace.Trace, opts Options) *Result {
	start := time.Now()
	if opts.PopSize == 0 {
		opts.PopSize = 24
	}
	if opts.Generations == 0 {
		opts.Generations = 60
	}
	if opts.Timeout == 0 {
		opts.Timeout = 60 * time.Second
	}
	deadline := start.Add(opts.Timeout)
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{Status: StatusCannotRepair}

	eval := func(ind *individual) (*verilog.Module, float64, bool) {
		res.Evaluations++
		mutated := Apply(m, ind.genome)
		fit, pass := fitness(mutated, tr, opts)
		ind.fitness = fit
		return mutated, fit, pass
	}

	// Initial population: single random mutations.
	pop := make([]*individual, opts.PopSize)
	for i := range pop {
		pop[i] = &individual{genome: []Mutation{randomMutation(rng)}}
	}
	var best *individual
	for gen := 0; gen < opts.Generations; gen++ {
		res.Generations = gen + 1
		for _, ind := range pop {
			if time.Now().After(deadline) {
				res.Status = StatusTimeout
				res.Duration = time.Since(start)
				if best != nil {
					res.BestFitness = best.fitness
				}
				return res
			}
			mutated, fit, pass := eval(ind)
			if pass {
				res.Status = StatusRepaired
				res.Repaired = mutated
				res.Changes = len(ind.genome)
				res.Genome = ind.genome
				res.BestFitness = fit
				res.Duration = time.Since(start)
				return res
			}
			if best == nil || fit > best.fitness {
				best = &individual{genome: append([]Mutation{}, ind.genome...), fitness: fit}
			}
		}
		// Next generation: elitism + tournament selection with crossover
		// and mutation.
		next := make([]*individual, 0, opts.PopSize)
		if best != nil {
			next = append(next, &individual{genome: append([]Mutation{}, best.genome...), fitness: best.fitness})
		}
		for len(next) < opts.PopSize {
			a := tournament(pop, rng)
			b := tournament(pop, rng)
			child := crossover(a, b, rng)
			// Mutate: usually append a new gene, sometimes drop one.
			switch {
			case len(child.genome) > 1 && rng.Intn(4) == 0:
				i := rng.Intn(len(child.genome))
				child.genome = append(child.genome[:i], child.genome[i+1:]...)
			case len(child.genome) < 6:
				child.genome = append(child.genome, randomMutation(rng))
			default:
				child.genome[rng.Intn(len(child.genome))] = randomMutation(rng)
			}
			next = append(next, child)
		}
		pop = next
	}
	res.Duration = time.Since(start)
	if best != nil {
		res.BestFitness = best.fitness
	}
	return res
}

func tournament(pop []*individual, rng *rand.Rand) *individual {
	best := pop[rng.Intn(len(pop))]
	for i := 0; i < 2; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

func crossover(a, b *individual, rng *rand.Rand) *individual {
	genome := []Mutation{}
	if len(a.genome) > 0 {
		genome = append(genome, a.genome[:rng.Intn(len(a.genome))+0]...)
	}
	if len(b.genome) > 0 {
		genome = append(genome, b.genome[rng.Intn(len(b.genome)):]...)
	}
	if len(genome) == 0 {
		genome = append(genome, randomMutation(rng))
	}
	if len(genome) > 8 {
		genome = genome[:8]
	}
	return &individual{genome: genome}
}

func randomMutation(rng *rand.Rand) Mutation {
	return Mutation{
		Kind:   MutKind(rng.Intn(int(mutKinds))),
		Target: rng.Intn(1 << 16),
		Param:  rng.Uint64(),
	}
}

// fitness simulates the candidate with the event simulator and returns
// the fraction of checked output bits that match, plus whether every
// check passed. Candidates that fail to parse/elaborate score zero.
func fitness(m *verilog.Module, tr *trace.Trace, opts Options) (float64, bool) {
	es, err := sim.NewEventSim(m, opts.Lib)
	if err != nil {
		return 0, false
	}
	res := sim.RunEventTrace(es, tr, sim.RunOptions{Policy: opts.Policy, Seed: opts.Seed, RunAll: true})
	totalBits, matchedBits := 0, 0
	for cycle := 0; cycle < tr.Len() && cycle < len(res.Outputs); cycle++ {
		for i := range tr.Outputs {
			exp := tr.OutputRows[cycle][i]
			got := res.Outputs[cycle][i]
			for b := 0; b < exp.Width(); b++ {
				if !exp.Known.Bit(b) {
					continue
				}
				totalBits++
				// A width mismatch (e.g. a narrowed port) fails the
				// out-of-range bits.
				if b < got.Width() && got.Known.Bit(b) && got.Val.Bit(b) == exp.Val.Bit(b) {
					matchedBits++
				}
			}
		}
	}
	if totalBits == 0 {
		return 1, true
	}
	return float64(matchedBits) / float64(totalBits), matchedBits == totalBits
}
