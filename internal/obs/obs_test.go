package obs

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

// TestNilSafety drives the entire disabled surface: nil tracer, nil
// span, nil registry, zero scope. Any panic fails the test.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start(nil, "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetBool("k", true)
	sp.SetWorker(3)
	sp.End()
	if sp.Name() != "" {
		t.Fatal("nil span has a name")
	}
	tr.StartKeyed(nil, "x", "k").End()
	if got := tr.PhaseTotals(); len(got) != 0 {
		t.Fatalf("nil tracer has phases: %v", got)
	}

	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Add("c", 1)
	r.SetGauge("g", 1)
	r.MaxGauge("g", 2)
	r.Observe("h", 3)
	r.ObserveDuration("h", time.Second)
	if r.Counter("c") != 0 || r.Gauge("g") != 0 {
		t.Fatal("nil registry returned values")
	}

	var sc Scope
	if sc.Enabled() {
		t.Fatal("zero scope reports enabled")
	}
	child := sc.Start("a").StartKeyed("b", "k")
	child.End()

	ctx := NewContext(context.Background(), sc)
	if FromContext(ctx).Enabled() {
		t.Fatal("zero scope round-tripped as enabled")
	}
	if FromContext(context.Background()).Enabled() || FromContext(nil).Enabled() {
		t.Fatal("absent scope reports enabled")
	}
}

// buildTrace records a small deterministic span tree, optionally with
// different sleep amounts so two builds have different timestamps.
func buildTrace(pause time.Duration) *Tracer {
	tr := New()
	root := tr.Start(nil, "repair")
	root.SetStr("design", "counter")
	pre := tr.Start(root, "preprocess")
	time.Sleep(pause)
	pre.End()
	for i := 0; i < 2; i++ {
		at := tr.StartKeyed(root, "attempt", []string{"p0:guard", "p0:literal"}[i])
		at.SetWorker(i)
		win := tr.Start(at, "window")
		win.SetInt("start", int64(i))
		win.SetInt("time_wall", time.Now().UnixNano()) // must be scrubbed
		win.End()
		at.End()
	}
	root.End()
	return tr
}

func TestJSONLExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace(0).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
}

func TestValidateJSONLRejectsOpenSpan(t *testing.T) {
	tr := New()
	tr.Start(nil, "repair") // never ended
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "open") {
		t.Fatalf("open span not rejected: %v", err)
	}
}

func TestValidateJSONLRejectsGarbage(t *testing.T) {
	for _, data := range []string{"", "not json\n", `{"type":"trace","version":9,"spans":0}` + "\n"} {
		if err := ValidateJSONL([]byte(data)); err == nil {
			t.Fatalf("garbage %q validated", data)
		}
	}
}

// TestScrubbedExportsDeterministic builds the same span tree twice with
// different real timings and checks both exporters agree byte-for-byte
// after scrubbing — the property the cross-worker golden test relies on.
func TestScrubbedExportsDeterministic(t *testing.T) {
	a, b := buildTrace(0), buildTrace(2*time.Millisecond)
	var ja, jb, ca, cb bytes.Buffer
	if err := a.WriteJSONL(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	sa, err := ScrubJSONL(ja.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ScrubJSONL(jb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("scrubbed JSONL differs:\n%s\n--- vs ---\n%s", sa, sb)
	}
	if strings.Contains(string(sa), "time_wall") || strings.Contains(string(sa), "start_us") {
		t.Fatalf("volatile keys survived scrubbing:\n%s", sa)
	}
	if err := a.WriteChromeTrace(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	ga, err := ScrubChromeTrace(ca.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ScrubChromeTrace(cb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, gb) {
		t.Fatalf("scrubbed Chrome trace differs:\n%s\n--- vs ---\n%s", ga, gb)
	}
}

// TestChromeTraceShape checks the trace_event specifics Perfetto needs:
// a thread_name metadata event per worker and "X" complete events.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace(0).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph": "M"`, `"ph": "X"`, `"name": "thread_name"`, `"name": "worker 1"`, `"name": "attempt"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("Chrome trace missing %s:\n%s", want, out)
		}
	}
}

func TestPhaseTotalsAndSummary(t *testing.T) {
	tr := buildTrace(0)
	totals := tr.PhaseTotals()
	if totals["attempt"].Count != 2 {
		t.Fatalf("attempt count = %d, want 2", totals["attempt"].Count)
	}
	if totals["repair"].Count != 1 || totals["window"].Count != 2 {
		t.Fatalf("unexpected totals: %v", totals)
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "attempt") || !strings.Contains(buf.String(), "phase") {
		t.Fatalf("summary missing content:\n%s", buf.String())
	}
}

func TestRegistryDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Add("sat.conflicts", 41)
		r.Add("sat.conflicts", 1)
		r.Add("repair.runs", 1)
		r.SetGauge("g", 2.5)
		r.MaxGauge("m", 1)
		r.MaxGauge("m", 7)
		r.MaxGauge("m", 3)
		r.Observe("h", 4)
		r.Observe("h", 600)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("registry JSON not deterministic:\n%s\n--- vs ---\n%s", a.String(), b.String())
	}
	r := build()
	if r.Counter("sat.conflicts") != 42 {
		t.Fatalf("counter = %d, want 42", r.Counter("sat.conflicts"))
	}
	if r.Gauge("m") != 7 {
		t.Fatalf("max gauge = %v, want 7", r.Gauge("m"))
	}
	if !strings.Contains(a.String(), "histogram_bounds") {
		t.Fatalf("bounds missing:\n%s", a.String())
	}
}

// TestTraceSchemaFile validates an externally produced JSONL trace when
// RTLREPAIR_TRACE_SCHEMA_FILE is set. The CI obs-smoke job runs the
// rtlrepair CLI with -trace-out and then points this test at the output.
func TestTraceSchemaFile(t *testing.T) {
	path := os.Getenv("RTLREPAIR_TRACE_SCHEMA_FILE")
	if path == "" {
		t.Skip("RTLREPAIR_TRACE_SCHEMA_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if _, err := ScrubJSONL(data); err != nil {
		t.Fatalf("%s: scrub: %v", path, err)
	}
	t.Logf("%s: schema ok (%d bytes)", path, len(data))
}
