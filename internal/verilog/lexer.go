package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokPunct
	tokSystem // $display etc.
	tokString
)

type token struct {
	kind tokKind
	text string
	pos  Pos
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "parameter": true,
	"localparam": true, "assign": true, "always": true, "initial": true,
	"begin": true, "end": true, "if": true, "else": true, "case": true,
	"casez": true, "casex": true, "endcase": true, "default": true,
	"posedge": true, "negedge": true, "or": true, "signed": true,
	"integer": true, "for": true, "while": true, "function": true,
	"endfunction": true, "task": true, "endtask": true, "generate": true,
	"endgenerate": true, "genvar": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||",
	"<<", ">>", "~&", "~|", "~^", "^~", "+:", "-:", "(", ")", "[", "]",
	"{", "}", ",", ";", ":", "?", "=", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "~", "!", "@", "#", ".",
}

type lexer struct {
	src    string
	off    int
	line   int
	col    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.off >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos()})
			return l.tokens, nil
		}
		start := l.pos()
		c := l.src[l.off]
		switch {
		case c == '"':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tokString, text: s, pos: start})
		case c == '$':
			l.advance(1)
			name := l.lexIdentText()
			l.tokens = append(l.tokens, token{kind: tokSystem, text: "$" + name, pos: start})
		case isIdentStart(rune(c)):
			name := l.lexIdentText()
			kind := tokIdent
			if keywords[name] {
				kind = tokKeyword
			}
			// Sized literal whose width is given by a preceding ident? No:
			// widths are digits, handled below. 'b101 with no width:
			l.tokens = append(l.tokens, token{kind: kind, text: name, pos: start})
		case c >= '0' && c <= '9':
			text, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tokNumber, text: text, pos: start})
		case c == '\'':
			// Unsized based literal like 'b0 or '1.
			text, err := l.lexBasedTail()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tokNumber, text: text, pos: start})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(l.src[l.off:], p) {
					l.advance(len(p))
					l.tokens = append(l.tokens, token{kind: tokPunct, text: p, pos: start})
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("verilog: %v: unexpected character %q", start, c)
			}
		}
	}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case strings.HasPrefix(l.src[l.off:], "//"):
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.off:], "/*"):
			l.advance(2)
			for l.off < len(l.src) && !strings.HasPrefix(l.src[l.off:], "*/") {
				l.advance(1)
			}
			l.advance(2)
		case c == '`':
			// Skip compiler directives to end of line (`timescale etc.)
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '\\' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdentText() string {
	start := l.off
	for l.off < len(l.src) && isIdentPart(rune(l.src[l.off])) {
		l.advance(1)
	}
	return l.src[start:l.off]
}

// lexNumber lexes decimal digits optionally followed by a based tail
// ('b1010 etc.), keeping underscores.
func (l *lexer) lexNumber() (string, error) {
	start := l.off
	for l.off < len(l.src) && (l.src[l.off] >= '0' && l.src[l.off] <= '9' || l.src[l.off] == '_') {
		l.advance(1)
	}
	// Possible based tail, allowing space between width and tick.
	save := l.off
	saveLine, saveCol := l.line, l.col
	ws := 0
	for l.off < len(l.src) && (l.src[l.off] == ' ' || l.src[l.off] == '\t') {
		l.advance(1)
		ws++
	}
	if l.off < len(l.src) && l.src[l.off] == '\'' {
		tail, err := l.lexBasedTail()
		if err != nil {
			return "", err
		}
		return l.src[start:save] + tail, nil
	}
	l.off, l.line, l.col = save, saveLine, saveCol
	return l.src[start:l.off], nil
}

// lexBasedTail lexes 'b1010, 'hff, 'd12 style tails including the tick.
func (l *lexer) lexBasedTail() (string, error) {
	start := l.off
	l.advance(1) // tick
	if l.off < len(l.src) && (l.src[l.off] == 's' || l.src[l.off] == 'S') {
		l.advance(1)
	}
	if l.off >= len(l.src) {
		return "", fmt.Errorf("verilog: %v: truncated literal", l.pos())
	}
	base := l.src[l.off]
	switch base {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
		l.advance(1)
	default:
		return "", fmt.Errorf("verilog: %v: bad literal base %q", l.pos(), base)
	}
	for l.off < len(l.src) && (l.src[l.off] == ' ' || l.src[l.off] == '\t') {
		l.advance(1)
	}
	digitStart := l.off
	for l.off < len(l.src) && isBaseDigit(l.src[l.off]) {
		l.advance(1)
	}
	if l.off == digitStart {
		return "", fmt.Errorf("verilog: %v: literal with no digits", l.pos())
	}
	return strings.ReplaceAll(l.src[start:l.off], " ", ""), nil
}

func isBaseDigit(c byte) bool {
	switch {
	case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		return true
	case c == '_', c == 'x', c == 'X', c == 'z', c == 'Z', c == '?':
		return true
	}
	return false
}

func (l *lexer) lexString() (string, error) {
	l.advance(1)
	start := l.off
	for l.off < len(l.src) && l.src[l.off] != '"' {
		if l.src[l.off] == '\\' {
			l.advance(1)
		}
		l.advance(1)
	}
	if l.off >= len(l.src) {
		return "", fmt.Errorf("verilog: unterminated string at %v", l.pos())
	}
	s := l.src[start:l.off]
	l.advance(1)
	return s, nil
}
