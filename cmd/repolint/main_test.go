package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, path, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lintFile(fset, path, f)
}

func TestSpanLeakDetected(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func leaky(sc Scope) {
	span := sc.Tracer.Start(sc.Span, "work")
	span.SetInt("n", 1)
}`)
	if len(got) != 1 || !strings.Contains(got[0], "obs-span-leak") {
		t.Fatalf("got %v, want one obs-span-leak finding", got)
	}
}

func TestSpanPairedVariants(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func ok(sc Scope) {
	a := sc.Tracer.Start(sc.Span, "direct")
	a.End()
	b := sc.Tracer.Start(sc.Span, "deferred")
	defer b.End()
	c := sc.Start("scoped")
	defer func() { c.End() }()
	if d := sc.Tracer.Start(sc.Span, "cond"); d != nil {
		defer d.End()
	}
	e := sc.Tracer.StartKeyed(sc.Span, "keyed", "k")
	e.End()
}`)
	if len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
}

func TestSpanFieldTargetExempt(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func stash(p *P, sc Scope) {
	p.obs = sc.Start("portfolio")
}`)
	if len(got) != 0 {
		t.Fatalf("field-stored span flagged: %v", got)
	}
}

func TestNonSpanStartIgnored(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func run(cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return err
	}
	return nil
}`)
	if len(got) != 0 {
		t.Fatalf("zero-arg Start flagged: %v", got)
	}
}

func TestFrozenCtxWriteDetected(t *testing.T) {
	src := `
package smt
func (c *Context) evil(key string, t *Term) {
	c.table[key] = t
	c.nextID++
	c.frozen = false
	c.vars["x"] = t
}`
	got := lintSrc(t, "internal/smt/bad.go", src)
	if len(got) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(got), got)
	}
	for _, g := range got {
		if !strings.Contains(g, "frozen-ctx-write") {
			t.Fatalf("unexpected finding %q", g)
		}
	}
	// The same file outside internal/smt is not checked.
	if got := lintSrc(t, "internal/other/bad.go", src); len(got) != 0 {
		t.Fatalf("ctx check leaked outside internal/smt: %v", got)
	}
}

func TestFrozenCtxWritersAllowed(t *testing.T) {
	got := lintSrc(t, "internal/smt/term.go", `
package smt
func (c *Context) intern(key string, mk func() *Term) *Term {
	c.nextID++
	c.table[key] = mk()
	return c.table[key]
}
func (c *Context) Freeze() {
	for p := c; p != nil && !p.frozen; p = p.parent {
		p.frozen = true
	}
}`)
	if len(got) != 0 {
		t.Fatalf("whitelisted writers flagged: %v", got)
	}
}

func TestRecorderLeakDetected(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func leaky(r *obs.Recorder) {
	h := r.BeginSpan(obs.Handle{}, "work", "scope", 0)
	_ = h
	cell := r.RegisterSolver("label", 0)
	cell.Beat(1, 2, 3, 4)
}`)
	if len(got) != 2 {
		t.Fatalf("got %v, want rec-begin-leak for h and cell", got)
	}
	for _, g := range got {
		if !strings.Contains(g, "rec-begin-leak") {
			t.Fatalf("unexpected finding %q", g)
		}
	}
}

func TestRecorderPairedVariants(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func ok(r *obs.Recorder) {
	h := r.BeginSpan(obs.Handle{}, "direct", "s", 0)
	h.End()
	g := r.BeginSpan(h, "attrs", "s", 0)
	defer g.End(obs.Int("n", 1))
	cell := r.RegisterSolver("label", 0)
	defer func() { cell.Close() }()
}`)
	if len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
}

func TestRecorderFieldTargetExempt(t *testing.T) {
	got := lintSrc(t, "a/b.go", `
package x
func stash(sc *Scope, r *obs.Recorder) {
	sc.Rh = r.BeginSpan(sc.Rh, "span", "s", 0)
}`)
	if len(got) != 0 {
		t.Fatalf("field-stored handle flagged: %v", got)
	}
}
