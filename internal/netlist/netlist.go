// Package netlist lowers a transition system to a gate-level netlist
// (and-inverter graph plus D flip-flops) and simulates it. This is the
// stand-in for the paper's gate-level simulation check (§6.2): a repair
// that only works under event-simulation semantics diverges here, which
// is how synthesis–simulation mismatch is detected automatically.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"rtlrepair/internal/smt"
	"rtlrepair/internal/tsys"
)

// Lit is a gate literal: node index shifted left once, low bit = invert.
type Lit int32

// MkLit builds a literal for node n, inverted if inv.
func MkLit(n int, inv bool) Lit {
	l := Lit(n << 1)
	if inv {
		l |= 1
	}
	return l
}

// Node returns the node index.
func (l Lit) Node() int { return int(l >> 1) }

// Inverted reports whether the literal is inverted.
func (l Lit) Inverted() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NodeKind enumerates gate kinds.
type NodeKind uint8

// Gate kinds. Node 0 is the constant false.
const (
	KindConst NodeKind = iota
	KindInput
	KindAnd
	KindDFF
)

// Node is one gate.
type Node struct {
	Kind NodeKind
	A, B Lit // KindAnd inputs
}

// DFF describes a flip-flop: the node holding its output and the literal
// feeding its D input. Init is nil for an uninitialized flop.
type DFF struct {
	Node int
	Next Lit
	Init *bool
	Name string // state name and bit, for debugging
	Bit  int
}

// Word is a named bundle of literals (LSB first).
type Word struct {
	Name string
	Lits []Lit
}

// Netlist is a flattened gate-level circuit.
type Netlist struct {
	Nodes   []Node
	Inputs  []Word
	Outputs []Word
	DFFs    []DFF

	hash map[[2]Lit]Lit
}

// NumGates reports the number of AND gates.
func (n *Netlist) NumGates() int {
	count := 0
	for _, node := range n.Nodes {
		if node.Kind == KindAnd {
			count++
		}
	}
	return count
}

// falseLit is the constant-0 literal (node 0).
const falseLit = Lit(0)
const trueLit = Lit(1)

func newNetlist() *Netlist {
	return &Netlist{
		Nodes: []Node{{Kind: KindConst}},
		hash:  map[[2]Lit]Lit{},
	}
}

func (n *Netlist) and(a, b Lit) Lit {
	if a == falseLit || b == falseLit {
		return falseLit
	}
	if a == trueLit {
		return b
	}
	if b == trueLit {
		return a
	}
	if a == b {
		return a
	}
	if a == b.Not() {
		return falseLit
	}
	if b < a {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := n.hash[key]; ok {
		return l
	}
	n.Nodes = append(n.Nodes, Node{Kind: KindAnd, A: a, B: b})
	l := MkLit(len(n.Nodes)-1, false)
	n.hash[key] = l
	return l
}

func (n *Netlist) or(a, b Lit) Lit  { return n.and(a.Not(), b.Not()).Not() }
func (n *Netlist) xor(a, b Lit) Lit { return n.or(n.and(a, b.Not()), n.and(a.Not(), b)) }
func (n *Netlist) mux(c, a, b Lit) Lit {
	return n.or(n.and(c, a), n.and(c.Not(), b))
}

func (n *Netlist) addWord(a, b []Lit, cin Lit) []Lit {
	sum := make([]Lit, len(a))
	c := cin
	for i := range a {
		axb := n.xor(a[i], b[i])
		sum[i] = n.xor(axb, c)
		c = n.or(n.and(a[i], b[i]), n.and(axb, c))
	}
	return sum
}

func (n *Netlist) ultWord(a, b []Lit) Lit {
	lt := falseLit
	for i := range a {
		bitLt := n.and(a[i].Not(), b[i])
		eq := n.xor(a[i], b[i]).Not()
		lt = n.or(bitLt, n.and(eq, lt))
	}
	return lt
}

// Build lowers a transition system to gates. Systems with synthesis
// parameters cannot be lowered (repairs are re-elaborated without holes
// before the gate-level check).
func Build(sys *tsys.System) (*Netlist, error) {
	if len(sys.Params) > 0 {
		return nil, fmt.Errorf("netlist: system has unresolved synthesis parameters")
	}
	n := newNetlist()
	b := &builder{n: n, memo: map[*smt.Term][]Lit{}}

	// Allocate inputs.
	for _, in := range sys.Inputs {
		lits := make([]Lit, in.Width)
		for i := range lits {
			n.Nodes = append(n.Nodes, Node{Kind: KindInput})
			lits[i] = MkLit(len(n.Nodes)-1, false)
		}
		n.Inputs = append(n.Inputs, Word{Name: in.Name, Lits: lits})
		b.memo[in] = lits
	}
	// Allocate flop outputs.
	for _, st := range sys.States {
		lits := make([]Lit, st.Var.Width)
		for i := range lits {
			n.Nodes = append(n.Nodes, Node{Kind: KindDFF})
			lits[i] = MkLit(len(n.Nodes)-1, false)
			var init *bool
			if st.Init != nil {
				v := st.Init.Val.Bit(i)
				init = &v
			}
			n.DFFs = append(n.DFFs, DFF{Node: len(n.Nodes) - 1, Init: init, Name: st.Var.Name, Bit: i})
		}
		b.memo[st.Var] = lits
	}
	// Lower next functions and outputs.
	dffIdx := 0
	for _, st := range sys.States {
		next, err := b.lower(st.Next)
		if err != nil {
			return nil, err
		}
		for i := range next {
			n.DFFs[dffIdx].Next = next[i]
			dffIdx++
		}
	}
	for _, o := range sys.Outputs {
		lits, err := b.lower(o.Expr)
		if err != nil {
			return nil, err
		}
		n.Outputs = append(n.Outputs, Word{Name: o.Name, Lits: lits})
	}
	return n, nil
}

type builder struct {
	n    *Netlist
	memo map[*smt.Term][]Lit
}

func (b *builder) lower(t *smt.Term) ([]Lit, error) {
	if ls, ok := b.memo[t]; ok {
		return ls, nil
	}
	n := b.n
	var out []Lit
	argLits := make([][]Lit, len(t.Args))
	for i, a := range t.Args {
		ls, err := b.lower(a)
		if err != nil {
			return nil, err
		}
		argLits[i] = ls
	}
	switch t.Op {
	case smt.OpConst:
		out = make([]Lit, t.Width)
		for i := range out {
			if t.Val.Bit(i) {
				out[i] = trueLit
			} else {
				out[i] = falseLit
			}
		}
	case smt.OpVar:
		return nil, fmt.Errorf("netlist: free variable %q", t.Name)
	case smt.OpNot:
		out = make([]Lit, t.Width)
		for i := range out {
			out[i] = argLits[0][i].Not()
		}
	case smt.OpAnd, smt.OpOr, smt.OpXor:
		out = make([]Lit, t.Width)
		for i := range out {
			switch t.Op {
			case smt.OpAnd:
				out[i] = n.and(argLits[0][i], argLits[1][i])
			case smt.OpOr:
				out[i] = n.or(argLits[0][i], argLits[1][i])
			default:
				out[i] = n.xor(argLits[0][i], argLits[1][i])
			}
		}
	case smt.OpNeg:
		na := make([]Lit, t.Width)
		zero := make([]Lit, t.Width)
		for i := range na {
			na[i] = argLits[0][i].Not()
			zero[i] = falseLit
		}
		out = n.addWord(na, zero, trueLit)
	case smt.OpAdd:
		out = n.addWord(argLits[0], argLits[1], falseLit)
	case smt.OpSub:
		nb := make([]Lit, t.Width)
		for i := range nb {
			nb[i] = argLits[1][i].Not()
		}
		out = n.addWord(argLits[0], nb, trueLit)
	case smt.OpMul:
		acc := make([]Lit, t.Width)
		for i := range acc {
			acc[i] = falseLit
		}
		for i := 0; i < t.Width; i++ {
			addend := make([]Lit, t.Width)
			for j := 0; j < t.Width; j++ {
				if j < i {
					addend[j] = falseLit
				} else {
					addend[j] = n.and(argLits[0][j-i], argLits[1][i])
				}
			}
			acc = n.addWord(acc, addend, falseLit)
		}
		out = acc
	case smt.OpUdiv, smt.OpUrem:
		q, r := b.divRem(argLits[0], argLits[1])
		if t.Op == smt.OpUdiv {
			out = q
		} else {
			out = r
		}
	case smt.OpEq:
		eq := trueLit
		for i := range argLits[0] {
			eq = n.and(eq, n.xor(argLits[0][i], argLits[1][i]).Not())
		}
		out = []Lit{eq}
	case smt.OpUlt:
		out = []Lit{n.ultWord(argLits[0], argLits[1])}
	case smt.OpSlt:
		fa := append([]Lit{}, argLits[0]...)
		fb := append([]Lit{}, argLits[1]...)
		fa[len(fa)-1] = fa[len(fa)-1].Not()
		fb[len(fb)-1] = fb[len(fb)-1].Not()
		out = []Lit{n.ultWord(fa, fb)}
	case smt.OpShl, smt.OpLshr, smt.OpAshr:
		out = b.shift(t, argLits[0], argLits[1])
	case smt.OpConcat:
		out = append(append([]Lit{}, argLits[1]...), argLits[0]...)
	case smt.OpExtract:
		out = append([]Lit{}, argLits[0][t.Lo:t.Hi+1]...)
	case smt.OpZeroExt:
		out = append([]Lit{}, argLits[0]...)
		for len(out) < t.Width {
			out = append(out, falseLit)
		}
	case smt.OpSignExt:
		out = append([]Lit{}, argLits[0]...)
		sign := argLits[0][len(argLits[0])-1]
		for len(out) < t.Width {
			out = append(out, sign)
		}
	case smt.OpIte:
		c := argLits[0][0]
		out = make([]Lit, t.Width)
		for i := range out {
			out[i] = n.mux(c, argLits[1][i], argLits[2][i])
		}
	case smt.OpRedOr:
		r := falseLit
		for _, l := range argLits[0] {
			r = n.or(r, l)
		}
		out = []Lit{r}
	case smt.OpRedAnd:
		r := trueLit
		for _, l := range argLits[0] {
			r = n.and(r, l)
		}
		out = []Lit{r}
	case smt.OpRedXor:
		r := falseLit
		for _, l := range argLits[0] {
			r = n.xor(r, l)
		}
		out = []Lit{r}
	default:
		return nil, fmt.Errorf("netlist: cannot lower %v", t.Op)
	}
	if len(out) != t.Width {
		return nil, fmt.Errorf("netlist: width mismatch lowering %v", t.Op)
	}
	b.memo[t] = out
	return out, nil
}

func (b *builder) divRem(a, bb []Lit) (q, r []Lit) {
	n := b.n
	w := len(a)
	rw := make([]Lit, w+1)
	for i := range rw {
		rw[i] = falseLit
	}
	bw := append(append([]Lit{}, bb...), falseLit)
	q = make([]Lit, w)
	for i := w - 1; i >= 0; i-- {
		shifted := make([]Lit, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], rw[:w])
		ge := n.ultWord(shifted, bw).Not()
		q[i] = ge
		nb := make([]Lit, w+1)
		for j := range bw {
			nb[j] = bw[j].Not()
		}
		diff := n.addWord(shifted, nb, trueLit)
		rw = make([]Lit, w+1)
		for j := range rw {
			rw[j] = n.mux(ge, diff[j], shifted[j])
		}
	}
	return q, rw[:w]
}

func (b *builder) shift(t *smt.Term, a, amt []Lit) []Lit {
	n := b.n
	w := t.Width
	cur := append([]Lit{}, a...)
	fillLit := falseLit
	if t.Op == smt.OpAshr {
		fillLit = a[w-1]
	}
	for stage := 0; stage < len(amt) && (1<<stage) < w; stage++ {
		d := 1 << stage
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var shifted Lit
			switch t.Op {
			case smt.OpShl:
				if i-d >= 0 {
					shifted = cur[i-d]
				} else {
					shifted = falseLit
				}
			default:
				if i+d < w {
					shifted = cur[i+d]
				} else {
					shifted = fillLit
				}
			}
			next[i] = n.mux(amt[stage], shifted, cur[i])
		}
		cur = next
	}
	over := falseLit
	for stage := 0; stage < len(amt); stage++ {
		if 1<<stage >= w || stage >= 31 {
			over = n.or(over, amt[stage])
		}
	}
	if over != falseLit {
		out := make([]Lit, w)
		for i := 0; i < w; i++ {
			out[i] = n.mux(over, fillLit, cur[i])
		}
		return out
	}
	return cur
}

// WriteVerilog emits the netlist as structural gate-level Verilog,
// analogous to the synthesized output a tool like yosys would hand to a
// gate-level simulator.
func (n *Netlist) WriteVerilog(name string) string {
	var sb strings.Builder
	var ports []string
	ports = append(ports, "clk")
	for _, w := range n.Inputs {
		ports = append(ports, w.Name)
	}
	for _, w := range n.Outputs {
		ports = append(ports, w.Name)
	}
	fmt.Fprintf(&sb, "module %s(%s);\n", name, strings.Join(ports, ", "))
	fmt.Fprintf(&sb, "  input clk;\n")
	for _, w := range n.Inputs {
		fmt.Fprintf(&sb, "  input [%d:0] %s;\n", len(w.Lits)-1, w.Name)
	}
	for _, w := range n.Outputs {
		fmt.Fprintf(&sb, "  output [%d:0] %s;\n", len(w.Lits)-1, w.Name)
	}
	lit := func(l Lit) string {
		if l == falseLit {
			return "1'b0"
		}
		if l == trueLit {
			return "1'b1"
		}
		if l.Inverted() {
			return fmt.Sprintf("~n%d", l.Node())
		}
		return fmt.Sprintf("n%d", l.Node())
	}
	inputBit := map[int]string{}
	for _, w := range n.Inputs {
		for i, l := range w.Lits {
			inputBit[l.Node()] = fmt.Sprintf("%s[%d]", w.Name, i)
		}
	}
	for idx, node := range n.Nodes {
		switch node.Kind {
		case KindAnd:
			fmt.Fprintf(&sb, "  wire n%d = %s & %s;\n", idx, lit(node.A), lit(node.B))
		case KindDFF:
			fmt.Fprintf(&sb, "  reg n%d;\n", idx)
		case KindInput:
			fmt.Fprintf(&sb, "  wire n%d = %s;\n", idx, inputBit[idx])
		}
	}
	fmt.Fprintf(&sb, "  always @(posedge clk) begin\n")
	for _, d := range n.DFFs {
		fmt.Fprintf(&sb, "    n%d <= %s;\n", d.Node, lit(d.Next))
	}
	fmt.Fprintf(&sb, "  end\n")
	for _, w := range n.Outputs {
		bits := make([]string, len(w.Lits))
		for i, l := range w.Lits {
			bits[len(w.Lits)-1-i] = lit(l)
		}
		fmt.Fprintf(&sb, "  assign %s = {%s};\n", w.Name, strings.Join(bits, ", "))
	}
	fmt.Fprintf(&sb, "endmodule\n")
	return sb.String()
}

// SortedStateNames lists DFF word names (for debugging).
func (n *Netlist) SortedStateNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range n.DFFs {
		if !seen[d.Name] {
			seen[d.Name] = true
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}
