// Package smt implements the quantifier-free bit-vector (QF_BV) logic
// used by the repair synthesizer: hash-consed terms with constant
// folding, substitution, concrete evaluation, and a decision procedure
// that bit-blasts to the CDCL SAT solver in internal/sat. It plays the
// role bitwuzla plays in the paper's artifact.
package smt

import (
	"fmt"
	"sort"
	"strings"

	"rtlrepair/internal/bv"
)

// Op enumerates term constructors.
type Op uint8

// Term operators. All terms are bit-vectors; booleans are width-1.
const (
	OpConst Op = iota
	OpVar
	OpNot // bitwise complement
	OpAnd
	OpOr
	OpXor
	OpNeg // two's complement negation
	OpAdd
	OpSub
	OpMul
	OpUdiv
	OpUrem
	OpEq  // width-1 result
	OpUlt // width-1 result
	OpSlt // width-1 result
	OpShl // variable shift, equal widths
	OpLshr
	OpAshr
	OpConcat
	OpExtract
	OpZeroExt
	OpSignExt
	OpIte // args: cond(1), then, else
	OpRedOr
	OpRedAnd
	OpRedXor
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpNot: "bvnot", OpAnd: "bvand",
	OpOr: "bvor", OpXor: "bvxor", OpNeg: "bvneg", OpAdd: "bvadd",
	OpSub: "bvsub", OpMul: "bvmul", OpUdiv: "bvudiv", OpUrem: "bvurem",
	OpEq: "=", OpUlt: "bvult", OpSlt: "bvslt", OpShl: "bvshl",
	OpLshr: "bvlshr", OpAshr: "bvashr", OpConcat: "concat",
	OpExtract: "extract", OpZeroExt: "zext", OpSignExt: "sext",
	OpIte: "ite", OpRedOr: "redor", OpRedAnd: "redand", OpRedXor: "redxor",
}

func (o Op) String() string { return opNames[o] }

// Term is an immutable, hash-consed bit-vector expression node. Terms are
// created through a Context; pointer equality implies structural equality
// within one Context.
type Term struct {
	Op    Op
	Width int
	Args  []*Term
	Val   bv.BV  // OpConst only
	Name  string // OpVar only
	Hi    int    // OpExtract only
	Lo    int    // OpExtract only
	id    uint64
}

// ID returns the unique id of the term within its context.
func (t *Term) ID() uint64 { return t.id }

// IsConst reports whether the term is a constant.
func (t *Term) IsConst() bool { return t.Op == OpConst }

// IsTrue reports whether the term is the width-1 constant 1.
func (t *Term) IsTrue() bool { return t.Op == OpConst && t.Width == 1 && !t.Val.IsZero() }

// IsFalse reports whether the term is the width-1 constant 0.
func (t *Term) IsFalse() bool { return t.Op == OpConst && t.Width == 1 && t.Val.IsZero() }

// Context creates and owns terms. It is not safe for concurrent use.
//
// A context may be layered on top of a frozen parent (see Clone): lookups
// fall through to the parent chain, while new terms land in the child's
// private maps. Because terms are immutable and a frozen parent never
// grows, many children can share one parent from different goroutines.
type Context struct {
	table  map[string]*Term
	vars   map[string]*Term
	nextID uint64
	parent *Context // frozen base layer; nil for a root context
	frozen bool     // set once a child exists; creation then panics
}

// NewContext returns an empty term context.
func NewContext() *Context {
	return &Context{table: map[string]*Term{}, vars: map[string]*Term{}}
}

// Clone returns a child context layered on top of c. The child sees every
// term c has interned so far — shared by pointer, which is safe because
// terms are immutable — and adds anything new to its own private layer, so
// re-elaborating a mostly-identical circuit into the child reuses the
// parent's DAG instead of rebuilding it. Cloning freezes c permanently:
// creating a term in a frozen context panics, which is what makes it safe
// for concurrent children to read the shared layer without locks. Term ids
// stay unique along any parent chain (children continue the parent's id
// counter), so hash-cons keys never collide across layers.
func (c *Context) Clone() *Context {
	c.Freeze()
	return &Context{table: map[string]*Term{}, vars: map[string]*Term{}, nextID: c.nextID, parent: c}
}

// Freeze marks the context (and its parent chain) read-only: creating a
// term afterwards panics. Clone freezes implicitly, but a context that
// will be cloned from several goroutines must be frozen eagerly by the
// constructing goroutine first — concurrent first-freezes would race.
// Freezing an already-frozen context is a no-op (and never writes).
func (c *Context) Freeze() {
	for p := c; p != nil && !p.frozen; p = p.parent {
		p.frozen = true
	}
}

func (c *Context) intern(key string, mk func() *Term) *Term {
	for p := c; p != nil; p = p.parent {
		if t, ok := p.table[key]; ok {
			return t
		}
	}
	if c.frozen {
		panic("smt: term created in frozen context (base of a Clone)")
	}
	t := mk()
	c.nextID++
	t.id = c.nextID
	c.table[key] = t
	return t
}

// Const returns the constant term for v.
func (c *Context) Const(v bv.BV) *Term {
	key := fmt.Sprintf("c%d:%s", v.Width(), v.HexString())
	return c.intern(key, func() *Term { return &Term{Op: OpConst, Width: v.Width(), Val: v} })
}

// ConstU is shorthand for Const(bv.New(width, val)).
func (c *Context) ConstU(width int, val uint64) *Term { return c.Const(bv.New(width, val)) }

// True returns the width-1 constant 1.
func (c *Context) True() *Term { return c.ConstU(1, 1) }

// False returns the width-1 constant 0.
func (c *Context) False() *Term { return c.ConstU(1, 0) }

// Bool converts a Go bool into a width-1 constant.
func (c *Context) Bool(b bool) *Term {
	if b {
		return c.True()
	}
	return c.False()
}

// Var returns the variable with the given name, creating it with the
// given width on first use. Width mismatches on reuse panic: they are
// always caller bugs.
func (c *Context) Var(name string, width int) *Term {
	for p := c; p != nil; p = p.parent {
		if t, ok := p.vars[name]; ok {
			if t.Width != width {
				panic(fmt.Sprintf("smt: variable %q redeclared with width %d (was %d)", name, width, t.Width))
			}
			return t
		}
	}
	if c.frozen {
		panic("smt: variable created in frozen context (base of a Clone)")
	}
	c.nextID++
	t := &Term{Op: OpVar, Width: width, Name: name, id: c.nextID}
	c.vars[name] = t
	return t
}

// LookupVar returns the variable with the given name, or nil.
func (c *Context) LookupVar(name string) *Term {
	for p := c; p != nil; p = p.parent {
		if t, ok := p.vars[name]; ok {
			return t
		}
	}
	return nil
}

func (c *Context) key(op Op, width int, args []*Term, hi, lo int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%d:%d:%d", op, width, hi, lo)
	for _, a := range args {
		fmt.Fprintf(&sb, ":%d", a.id)
	}
	return sb.String()
}

func (c *Context) mk(op Op, width int, args ...*Term) *Term {
	key := c.key(op, width, args, 0, 0)
	return c.intern(key, func() *Term { return &Term{Op: op, Width: width, Args: args} })
}

func checkWidth(op Op, a, b *Term) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("smt: %v operand width mismatch: %d vs %d", op, a.Width, b.Width))
	}
}

// Not returns the bitwise complement.
func (c *Context) Not(a *Term) *Term {
	if a.IsConst() {
		return c.Const(a.Val.Not())
	}
	if a.Op == OpNot {
		return a.Args[0]
	}
	return c.mk(OpNot, a.Width, a)
}

// And returns the bitwise AND of two equal-width terms.
func (c *Context) And(a, b *Term) *Term {
	checkWidth(OpAnd, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.And(b.Val))
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		if b.Val.IsZero() {
			return b
		}
		if b.Val.IsOnes() {
			return a
		}
	}
	if a == b {
		return a
	}
	return c.mk(OpAnd, a.Width, a, b)
}

// Or returns the bitwise OR of two equal-width terms.
func (c *Context) Or(a, b *Term) *Term {
	checkWidth(OpOr, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Or(b.Val))
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		if b.Val.IsZero() {
			return a
		}
		if b.Val.IsOnes() {
			return b
		}
	}
	if a == b {
		return a
	}
	return c.mk(OpOr, a.Width, a, b)
}

// Xor returns the bitwise XOR of two equal-width terms.
func (c *Context) Xor(a, b *Term) *Term {
	checkWidth(OpXor, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Xor(b.Val))
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		if b.Val.IsZero() {
			return a
		}
		if b.Val.IsOnes() {
			return c.Not(a)
		}
	}
	if a == b {
		return c.Const(bv.Zero(a.Width))
	}
	return c.mk(OpXor, a.Width, a, b)
}

// Neg returns the two's-complement negation.
func (c *Context) Neg(a *Term) *Term {
	if a.IsConst() {
		return c.Const(a.Val.Neg())
	}
	return c.mk(OpNeg, a.Width, a)
}

// Add returns the modular sum.
func (c *Context) Add(a, b *Term) *Term {
	checkWidth(OpAdd, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Add(b.Val))
	}
	if a.IsConst() && a.Val.IsZero() {
		return b
	}
	if b.IsConst() && b.Val.IsZero() {
		return a
	}
	return c.mk(OpAdd, a.Width, a, b)
}

// Sub returns the modular difference.
func (c *Context) Sub(a, b *Term) *Term {
	checkWidth(OpSub, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Sub(b.Val))
	}
	if b.IsConst() && b.Val.IsZero() {
		return a
	}
	return c.mk(OpSub, a.Width, a, b)
}

// Mul returns the modular product.
func (c *Context) Mul(a, b *Term) *Term {
	checkWidth(OpMul, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Mul(b.Val))
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		if b.Val.IsZero() {
			return b
		}
		if b.Val.Eq(bv.One(b.Width)) {
			return a
		}
	}
	return c.mk(OpMul, a.Width, a, b)
}

// Udiv returns the unsigned quotient (SMT-LIB division-by-zero semantics).
func (c *Context) Udiv(a, b *Term) *Term {
	checkWidth(OpUdiv, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Udiv(b.Val))
	}
	return c.mk(OpUdiv, a.Width, a, b)
}

// Urem returns the unsigned remainder.
func (c *Context) Urem(a, b *Term) *Term {
	checkWidth(OpUrem, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Urem(b.Val))
	}
	return c.mk(OpUrem, a.Width, a, b)
}

// Eq returns the width-1 equality predicate.
func (c *Context) Eq(a, b *Term) *Term {
	checkWidth(OpEq, a, b)
	if a == b {
		return c.True()
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val.Eq(b.Val))
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.mk(OpEq, 1, a, b)
}

// Ne returns the width-1 disequality predicate.
func (c *Context) Ne(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Ult returns the width-1 unsigned less-than predicate.
func (c *Context) Ult(a, b *Term) *Term {
	checkWidth(OpUlt, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val.Ult(b.Val))
	}
	if a == b {
		return c.False()
	}
	return c.mk(OpUlt, 1, a, b)
}

// Ule returns a <= b (unsigned).
func (c *Context) Ule(a, b *Term) *Term { return c.Not(c.Ult(b, a)) }

// Ugt returns a > b (unsigned).
func (c *Context) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns a >= b (unsigned).
func (c *Context) Uge(a, b *Term) *Term { return c.Not(c.Ult(a, b)) }

// Slt returns the width-1 signed less-than predicate.
func (c *Context) Slt(a, b *Term) *Term {
	checkWidth(OpSlt, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.Val.Slt(b.Val))
	}
	if a == b {
		return c.False()
	}
	return c.mk(OpSlt, 1, a, b)
}

// Shl returns a << b where b is an equal-width shift amount.
func (c *Context) Shl(a, b *Term) *Term {
	checkWidth(OpShl, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.ShlBV(b.Val))
	}
	if b.IsConst() && b.Val.IsZero() {
		return a
	}
	return c.mk(OpShl, a.Width, a, b)
}

// Lshr returns the logical right shift.
func (c *Context) Lshr(a, b *Term) *Term {
	checkWidth(OpLshr, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.LshrBV(b.Val))
	}
	if b.IsConst() && b.Val.IsZero() {
		return a
	}
	return c.mk(OpLshr, a.Width, a, b)
}

// Ashr returns the arithmetic right shift.
func (c *Context) Ashr(a, b *Term) *Term {
	checkWidth(OpAshr, a, b)
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.AshrBV(b.Val))
	}
	if b.IsConst() && b.Val.IsZero() {
		return a
	}
	return c.mk(OpAshr, a.Width, a, b)
}

// Concat returns {a, b}; a provides the most-significant bits.
func (c *Context) Concat(a, b *Term) *Term {
	if a.Width == 0 {
		return b
	}
	if b.Width == 0 {
		return a
	}
	if a.IsConst() && b.IsConst() {
		return c.Const(a.Val.Concat(b.Val))
	}
	return c.mk(OpConcat, a.Width+b.Width, a, b)
}

// Extract returns bits [hi:lo] of a.
func (c *Context) Extract(a *Term, hi, lo int) *Term {
	if lo < 0 || hi < lo || hi >= a.Width {
		panic(fmt.Sprintf("smt: extract [%d:%d] out of range for width %d", hi, lo, a.Width))
	}
	if lo == 0 && hi == a.Width-1 {
		return a
	}
	if a.IsConst() {
		return c.Const(a.Val.Extract(hi, lo))
	}
	if a.Op == OpExtract {
		return c.Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	}
	key := c.key(OpExtract, hi-lo+1, []*Term{a}, hi, lo)
	return c.intern(key, func() *Term {
		return &Term{Op: OpExtract, Width: hi - lo + 1, Args: []*Term{a}, Hi: hi, Lo: lo}
	})
}

// ZeroExt widens a to the given width with zero bits.
func (c *Context) ZeroExt(a *Term, width int) *Term {
	if width == a.Width {
		return a
	}
	if width < a.Width {
		panic("smt: zero-extension narrower than term")
	}
	if a.IsConst() {
		return c.Const(a.Val.ZeroExt(width))
	}
	return c.mk(OpZeroExt, width, a)
}

// SignExt widens a to the given width replicating the sign bit.
func (c *Context) SignExt(a *Term, width int) *Term {
	if width == a.Width {
		return a
	}
	if width < a.Width {
		panic("smt: sign-extension narrower than term")
	}
	if a.IsConst() {
		return c.Const(a.Val.SignExt(width))
	}
	return c.mk(OpSignExt, width, a)
}

// Resize truncates or zero-extends a to the given width.
func (c *Context) Resize(a *Term, width int) *Term {
	switch {
	case width == a.Width:
		return a
	case width < a.Width:
		return c.Extract(a, width-1, 0)
	default:
		return c.ZeroExt(a, width)
	}
}

// Ite returns the if-then-else of a width-1 condition.
func (c *Context) Ite(cond, then, els *Term) *Term {
	if cond.Width != 1 {
		panic("smt: ite condition must have width 1")
	}
	checkWidth(OpIte, then, els)
	if cond.IsTrue() {
		return then
	}
	if cond.IsFalse() {
		return els
	}
	if then == els {
		return then
	}
	if then.Width == 1 && then.IsTrue() && els.IsFalse() {
		return cond
	}
	if then.Width == 1 && then.IsFalse() && els.IsTrue() {
		return c.Not(cond)
	}
	return c.mk(OpIte, then.Width, cond, then, els)
}

// RedOr reduces a to a single bit: 1 iff any bit is set.
func (c *Context) RedOr(a *Term) *Term {
	if a.Width == 1 {
		return a
	}
	if a.IsConst() {
		return c.Const(a.Val.ReduceOr())
	}
	return c.mk(OpRedOr, 1, a)
}

// RedAnd reduces a to a single bit: 1 iff all bits are set.
func (c *Context) RedAnd(a *Term) *Term {
	if a.Width == 1 {
		return a
	}
	if a.IsConst() {
		return c.Const(a.Val.ReduceAnd())
	}
	return c.mk(OpRedAnd, 1, a)
}

// RedXor reduces a to its parity bit.
func (c *Context) RedXor(a *Term) *Term {
	if a.Width == 1 {
		return a
	}
	if a.IsConst() {
		return c.Const(a.Val.ReduceXor())
	}
	return c.mk(OpRedXor, 1, a)
}

// Implies returns !a | b for width-1 terms.
func (c *Context) Implies(a, b *Term) *Term { return c.Or(c.Not(a), b) }

// reduceBalanced folds ts pairwise into a balanced tree, so the term
// depth (and hence the bit-blasted gate depth) is logarithmic in len(ts)
// instead of linear as with a left-leaning fold.
func reduceBalanced(ts []*Term, f func(a, b *Term) *Term) *Term {
	for len(ts) > 1 {
		next := make([]*Term, 0, (len(ts)+1)/2)
		for i := 0; i+1 < len(ts); i += 2 {
			next = append(next, f(ts[i], ts[i+1]))
		}
		if len(ts)%2 == 1 {
			next = append(next, ts[len(ts)-1])
		}
		ts = next
	}
	return ts[0]
}

// AndN returns the conjunction of equal-width terms as a balanced tree.
// With no operands it returns the width-1 constant 1.
func (c *Context) AndN(ts ...*Term) *Term {
	if len(ts) == 0 {
		return c.True()
	}
	return reduceBalanced(ts, c.And)
}

// OrN returns the disjunction of equal-width terms as a balanced tree.
// With no operands it returns the width-1 constant 0.
func (c *Context) OrN(ts ...*Term) *Term {
	if len(ts) == 0 {
		return c.False()
	}
	return reduceBalanced(ts, c.Or)
}

// AddN returns the modular sum of equal-width terms as a balanced tree.
// With no operands it returns the zero constant of the given width.
func (c *Context) AddN(width int, ts ...*Term) *Term {
	if len(ts) == 0 {
		return c.Const(bv.Zero(width))
	}
	return reduceBalanced(ts, c.Add)
}

// Bools treats a possibly wide term as a condition: nonzero means true.
func (c *Context) Truthy(a *Term) *Term { return c.RedOr(a) }

// Substitute returns t with variables replaced according to sub. Terms
// not mentioned are rebuilt bottom-up (re-folding constants).
func (c *Context) Substitute(t *Term, sub map[*Term]*Term) *Term {
	memo := map[*Term]*Term{}
	var rec func(*Term) *Term
	rec = func(t *Term) *Term {
		if r, ok := sub[t]; ok {
			return r
		}
		if r, ok := memo[t]; ok {
			return r
		}
		var r *Term
		switch t.Op {
		case OpConst, OpVar:
			r = t
		case OpExtract:
			r = c.Extract(rec(t.Args[0]), t.Hi, t.Lo)
		default:
			args := make([]*Term, len(t.Args))
			changed := false
			for i, a := range t.Args {
				args[i] = rec(a)
				if args[i] != a {
					changed = true
				}
			}
			if !changed {
				r = t
			} else {
				r = c.rebuild(t.Op, t.Width, args)
			}
		}
		memo[t] = r
		return r
	}
	return rec(t)
}

func (c *Context) rebuild(op Op, width int, args []*Term) *Term {
	switch op {
	case OpNot:
		return c.Not(args[0])
	case OpAnd:
		return c.And(args[0], args[1])
	case OpOr:
		return c.Or(args[0], args[1])
	case OpXor:
		return c.Xor(args[0], args[1])
	case OpNeg:
		return c.Neg(args[0])
	case OpAdd:
		return c.Add(args[0], args[1])
	case OpSub:
		return c.Sub(args[0], args[1])
	case OpMul:
		return c.Mul(args[0], args[1])
	case OpUdiv:
		return c.Udiv(args[0], args[1])
	case OpUrem:
		return c.Urem(args[0], args[1])
	case OpEq:
		return c.Eq(args[0], args[1])
	case OpUlt:
		return c.Ult(args[0], args[1])
	case OpSlt:
		return c.Slt(args[0], args[1])
	case OpShl:
		return c.Shl(args[0], args[1])
	case OpLshr:
		return c.Lshr(args[0], args[1])
	case OpAshr:
		return c.Ashr(args[0], args[1])
	case OpConcat:
		return c.Concat(args[0], args[1])
	case OpZeroExt:
		return c.ZeroExt(args[0], width)
	case OpSignExt:
		return c.SignExt(args[0], width)
	case OpIte:
		return c.Ite(args[0], args[1], args[2])
	case OpRedOr:
		return c.RedOr(args[0])
	case OpRedAnd:
		return c.RedAnd(args[0])
	case OpRedXor:
		return c.RedXor(args[0])
	}
	panic(fmt.Sprintf("smt: rebuild of %v", op))
}

// Eval computes the concrete value of t; env supplies values for
// variables. Eval panics if env returns a wrong-width value or is nil
// when a variable is reached.
func Eval(t *Term, env func(*Term) bv.BV) bv.BV {
	return NewEvaluator(env).Eval(t)
}

// CollectVars returns the distinct variables of t in a deterministic
// (name-sorted) order.
func CollectVars(ts ...*Term) []*Term {
	seen := map[*Term]bool{}
	var out []*Term
	var rec func(*Term)
	rec = func(t *Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if t.Op == OpVar {
			out = append(out, t)
			return
		}
		for _, a := range t.Args {
			rec(a)
		}
	}
	for _, t := range ts {
		rec(t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the term in an SMT-LIB-like prefix syntax (for debugging
// and the btor-style writer).
func (t *Term) String() string {
	switch t.Op {
	case OpConst:
		return t.Val.String()
	case OpVar:
		return t.Name
	case OpExtract:
		return fmt.Sprintf("(extract[%d:%d] %s)", t.Hi, t.Lo, t.Args[0])
	default:
		var sb strings.Builder
		fmt.Fprintf(&sb, "(%v", t.Op)
		for _, a := range t.Args {
			sb.WriteByte(' ')
			sb.WriteString(a.String())
		}
		sb.WriteByte(')')
		return sb.String()
	}
}
