package eval

import (
	"testing"
	"time"

	"rtlrepair/internal/bench"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.RTLTimeout = 45 * time.Second
	o.CirFixTimeout = 3 * time.Second
	o.CirFixGenerations = 12
	return o
}

func TestRTLRepairKeyBenchmarks(t *testing.T) {
	cases := []struct {
		name        string
		wantVerdict Verdict
		wantStatus  string
	}{
		{"counter_k1", VerdictCorrect, "repaired"},
		{"counter_w2", VerdictCorrect, "repaired"},
		{"counter_w1", VerdictNone, "cannot-repair"},
		{"decoder_w1", VerdictCorrect, "repaired"},
		{"flop_w1", VerdictCorrect, "repaired"},
		{"flop_w2", VerdictCorrect, "repaired"},
		{"fsm_s2", VerdictCorrect, "repaired-by-preprocessing"},
		{"fsm_w2", VerdictCorrect, "repaired-by-preprocessing"},
		{"fsm_s1", VerdictCorrect, "repaired-by-preprocessing"},
		{"shift_w1", VerdictCorrect, "repaired-by-preprocessing"},
		{"shift_w2", VerdictCorrect, "repaired"},
		{"shift_k1", VerdictWrong, "no-repair-needed"},
		{"mux_w2", VerdictCorrect, "repaired"},
		{"mux_w1", VerdictCorrect, "repaired"},
		{"mux_k1", VerdictNone, "cannot-repair"},
		{"sdram_w2", VerdictCorrect, "repaired"},
		{"sdram_k2", VerdictCorrect, "repaired-by-preprocessing"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := bench.ByName(tc.name)
			if b == nil {
				t.Fatalf("benchmark %s missing", tc.name)
			}
			run := RunRTLRepair(b, quickOpts())
			if run.Err != "" {
				t.Fatalf("error: %s", run.Err)
			}
			if run.Status != tc.wantStatus {
				t.Errorf("status = %s, want %s (verdict %v, template %s, changes %d, checks %+v)",
					run.Status, tc.wantStatus, run.Verdict, run.Template, run.Changes, run.Checks)
			}
			if run.Verdict != tc.wantVerdict {
				t.Errorf("verdict = %v, want %v (checks %+v)", run.Verdict, tc.wantVerdict, run.Checks)
			}
		})
	}
}

func TestRTLRepairLongTraceI2C(t *testing.T) {
	if testing.Short() {
		t.Skip("long benchmark")
	}
	b := bench.ByName("i2c_k1")
	run := RunRTLRepair(b, quickOpts())
	if run.Err != "" {
		t.Fatalf("error: %s", run.Err)
	}
	if run.Verdict != VerdictCorrect {
		t.Fatalf("i2c_k1: status %s verdict %v changes %d (window %v, checks %+v)",
			run.Status, run.Verdict, run.Changes, run.Window, run.Checks)
	}
}
