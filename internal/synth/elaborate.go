package synth

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/tsys"
	"rtlrepair/internal/verilog"
)

// Options configures elaboration.
type Options struct {
	// Lib provides definitions for instantiated modules.
	Lib map[string]*verilog.Module
}

// Info carries side information the repair templates and lint need.
type Info struct {
	ClockName string
	Widths    map[string]int
	// CombDeps maps each combinationally-driven signal to the signals
	// its definition reads combinationally (direct dependencies).
	CombDeps map[string]map[string]bool
	// Latches lists signals that would synthesize to latches.
	Latches []string
	// Params holds evaluated parameter values.
	Params map[string]bv.BV
	// SynthParams are the synthesis variables (φ/α) found in the design.
	SynthParams []*smt.Term
	// States lists the register names in deterministic order.
	States []string
}

type sigInfo struct {
	width  int
	lsb    int
	signed bool
	kind   verilog.NetKind
	dir    verilog.Dir

	isState  bool
	isInput  bool
	resolved *smt.Term
	visiting bool

	// drivers
	contDrivers []contDriver
	combBlock   *verilog.Always
	clkBlock    *verilog.Always
	initVal     *bv.BV
}

type contDriver struct {
	hi, lo int // bit range within the signal (after lsb adjustment)
	rhs    verilog.Expr
	pos    verilog.Pos
}

type elab struct {
	ctx    *smt.Context
	m      *verilog.Module
	params map[string]bv.BV
	sigs   map[string]*sigInfo
	order  []string // declaration order

	clock     string
	synthVars map[string]*smt.Term
	synthList []*smt.Term
	combDeps  map[string]map[string]bool
	latches   map[string]bool

	// per comb-block resolution memo and in-progress marker
	combResolved   map[*verilog.Always]map[string]*smt.Term
	combInProgress map[*verilog.Always]bool

	// current comb-deps accumulation target stack
	depTarget []string
}

// elaborations counts Elaborate calls process-wide. The serving layer's
// artifact cache uses the counter to prove (in tests and metrics) that a
// cache hit skips the frontend elaboration.
var elaborations atomic.Int64

// Elaborations returns the process-wide number of Elaborate calls.
func Elaborations() int64 { return elaborations.Load() }

// Elaborate converts a Verilog module (plus instantiated library modules)
// into a transition system. It returns the system and synthesis info, or
// an *ErrSynth describing why the design is not synthesizable.
func Elaborate(ctx *smt.Context, m *verilog.Module, opts Options) (*tsys.System, *Info, error) {
	elaborations.Add(1)
	flat, err := Flatten(m, opts.Lib)
	if err != nil {
		return nil, nil, err
	}
	e := &elab{
		ctx:            ctx,
		m:              flat,
		params:         map[string]bv.BV{},
		sigs:           map[string]*sigInfo{},
		synthVars:      map[string]*smt.Term{},
		combDeps:       map[string]map[string]bool{},
		latches:        map[string]bool{},
		combResolved:   map[*verilog.Always]map[string]*smt.Term{},
		combInProgress: map[*verilog.Always]bool{},
	}
	if err := e.collect(); err != nil {
		return nil, nil, err
	}
	sys, err := e.build()
	if err != nil {
		return nil, nil, err
	}
	if len(e.latches) > 0 {
		names := sortedKeys(e.latches)
		return nil, nil, &ErrSynth{Kind: "latch", Msg: fmt.Sprintf("signals %v infer latches", names), Signals: names}
	}
	info := &Info{
		ClockName: e.clock,
		Widths:    map[string]int{},
		CombDeps:  e.combDeps,
		Params:    e.params,
	}
	for name, si := range e.sigs {
		info.Widths[name] = si.width
	}
	info.SynthParams = e.synthList
	for _, st := range sys.States {
		info.States = append(info.States, st.Var.Name)
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	return sys, info, nil
}

// collect gathers declarations, parameters and drivers.
func (e *elab) collect() error {
	// Parameters first (in order, so later params can use earlier ones).
	for _, it := range e.m.Items {
		if p, ok := it.(*verilog.Param); ok {
			v, err := e.constEval(p.Value)
			if err != nil {
				return err
			}
			if p.MSB != nil {
				hi, err := e.constEvalInt(p.MSB)
				if err != nil {
					return err
				}
				lo, err := e.constEvalInt(p.LSB)
				if err != nil {
					return err
				}
				v = v.Resize(int(hi-lo) + 1)
			} else if v.Width() < 32 {
				v = v.Resize(32)
			}
			e.params[p.Name] = v
		}
	}
	// Declarations.
	for _, it := range e.m.Items {
		d, ok := it.(*verilog.Decl)
		if !ok {
			continue
		}
		width, lsb := 1, 0
		if d.MSB != nil {
			hi, err := e.constEvalInt(d.MSB)
			if err != nil {
				return err
			}
			lo, err := e.constEvalInt(d.LSB)
			if err != nil {
				return err
			}
			if hi < lo {
				return errf("unsupported", "%v: descending range on %q", d.Pos, d.Name)
			}
			width, lsb = int(hi-lo)+1, int(lo)
		}
		if prev, ok := e.sigs[d.Name]; ok {
			// Port declared in header and again in body (non-ANSI style):
			// merge direction/kind.
			if d.Dir != verilog.DirNone {
				prev.dir = d.Dir
			}
			if d.Kind == verilog.KindReg {
				prev.kind = verilog.KindReg
			}
			if d.MSB != nil {
				prev.width, prev.lsb = width, lsb
			}
			prev.signed = prev.signed || d.Signed
			continue
		}
		si := &sigInfo{width: width, lsb: lsb, signed: d.Signed, kind: d.Kind, dir: d.Dir}
		if d.Init != nil {
			if d.Kind == verilog.KindReg {
				v, err := e.constEval(d.Init)
				if err != nil {
					return err
				}
				rv := v.Resize(width)
				si.initVal = &rv
			} else {
				si.contDrivers = append(si.contDrivers, contDriver{hi: width - 1, lo: 0, rhs: d.Init, pos: d.Pos})
			}
		}
		e.sigs[d.Name] = si
		e.order = append(e.order, d.Name)
	}
	// Drivers: continuous assignments first, so that clock aliases
	// introduced by flattening can be resolved when classifying always
	// blocks.
	var alwaysBlocks []*verilog.Always
	for _, it := range e.m.Items {
		switch it := it.(type) {
		case *verilog.ContAssign:
			if err := e.addContAssign(it); err != nil {
				return err
			}
		case *verilog.Always:
			alwaysBlocks = append(alwaysBlocks, it)
		case *verilog.Initial:
			if err := e.addInitial(it); err != nil {
				return err
			}
		}
	}
	for _, a := range alwaysBlocks {
		if err := e.addAlways(a); err != nil {
			return err
		}
	}
	// Inputs.
	for _, name := range e.order {
		si := e.sigs[name]
		if si.dir == verilog.DirInput {
			if si.clkBlock != nil || si.combBlock != nil || len(si.contDrivers) > 0 {
				return errf("multi-driver", "input %q is driven inside the module", name)
			}
			si.isInput = true
		}
		if si.dir == verilog.DirInout {
			return errf("unsupported", "inout port %q (tri-state unsupported)", name)
		}
	}
	return nil
}

func (e *elab) addContAssign(a *verilog.ContAssign) error {
	return e.addContTarget(a.LHS, a.RHS, a.Pos)
}

// addContTarget registers a continuous driver for an lvalue.
func (e *elab) addContTarget(lhs verilog.Expr, rhs verilog.Expr, pos verilog.Pos) error {
	switch l := lhs.(type) {
	case *verilog.Ident:
		si, ok := e.sigs[l.Name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", pos, l.Name)
		}
		si.contDrivers = append(si.contDrivers, contDriver{hi: si.width - 1, lo: 0, rhs: rhs, pos: pos})
		return nil
	case *verilog.PartSelect:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return errf("unsupported", "%v: nested part-select target", pos)
		}
		si, ok := e.sigs[id.Name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", pos, id.Name)
		}
		hi, err := e.constEvalInt(l.MSB)
		if err != nil {
			return err
		}
		lo, err := e.constEvalInt(l.LSB)
		if err != nil {
			return err
		}
		si.contDrivers = append(si.contDrivers, contDriver{hi: int(hi) - si.lsb, lo: int(lo) - si.lsb, rhs: rhs, pos: pos})
		return nil
	case *verilog.Index:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return errf("unsupported", "%v: nested index target", pos)
		}
		si, ok := e.sigs[id.Name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", pos, id.Name)
		}
		bit, err := e.constEvalInt(l.Idx)
		if err != nil {
			return errf("unsupported", "%v: continuous assignment to dynamic bit", pos)
		}
		b := int(bit) - si.lsb
		si.contDrivers = append(si.contDrivers, contDriver{hi: b, lo: b, rhs: rhs, pos: pos})
		return nil
	case *verilog.Concat:
		// Split RHS among parts, MSB first.
		widths := make([]int, len(l.Parts))
		total := 0
		conv := e.conv(nil)
		for i, p := range l.Parts {
			w, err := conv.selfWidth(p)
			if err != nil {
				return err
			}
			widths[i] = w
			total += w
		}
		offset := total
		for i, p := range l.Parts {
			offset -= widths[i]
			slice := &verilog.PartSelect{
				Pos: pos,
				X:   rhs,
				MSB: verilog.MkNumber(32, uint64(offset+widths[i]-1)),
				LSB: verilog.MkNumber(32, uint64(offset)),
			}
			// The slice must select from the *resized* RHS; wrap RHS in a
			// concat with zero padding via a synthetic expression is
			// overkill — instead require RHS self-width >= total.
			if err := e.addContTarget(p, slice, pos); err != nil {
				return err
			}
		}
		return nil
	}
	return errf("unsupported", "%v: continuous assignment target %T", pos, lhs)
}

func (e *elab) addAlways(a *verilog.Always) error {
	names, err := blockTargets(a)
	if err != nil {
		return err
	}
	targets := map[string]bool{}
	for _, n := range names {
		targets[n] = true
	}
	if a.IsClocked() {
		// Identify the clock. Multiple edges → async logic, unsupported.
		var edges []verilog.SenseItem
		for _, s := range a.Senses {
			if s.Edge != verilog.EdgeLevel {
				edges = append(edges, s)
			}
		}
		if len(edges) != 1 {
			return errf("unsupported", "%v: multiple edge triggers (async reset?)", a.Pos)
		}
		clk := e.aliasOf(edges[0].Signal)
		if e.clock == "" {
			e.clock = clk
		} else if e.clock != clk {
			return errf("unsupported", "%v: multiple clock signals (%s and %s)", a.Pos, e.clock, clk)
		}
		for name := range targets {
			si, ok := e.sigs[name]
			if !ok {
				return errf("unsupported", "%v: assignment to undeclared %q", a.Pos, name)
			}
			if si.clkBlock != nil && si.clkBlock != a {
				return errf("multi-driver", "register %q assigned in two clocked blocks", name)
			}
			if si.combBlock != nil || len(si.contDrivers) > 0 {
				return errf("multi-driver", "signal %q driven by both clocked and combinational logic", name)
			}
			si.clkBlock = a
			si.isState = true
		}
		return nil
	}
	// Combinational (level-sensitive or @*) block. Synthesis ignores the
	// sensitivity list contents.
	for name := range targets {
		si, ok := e.sigs[name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", a.Pos, name)
		}
		if si.combBlock != nil && si.combBlock != a {
			return errf("multi-driver", "signal %q assigned in two combinational blocks", name)
		}
		if si.clkBlock != nil || len(si.contDrivers) > 0 {
			return errf("multi-driver", "signal %q has conflicting drivers", name)
		}
		si.combBlock = a
	}
	return nil
}

func (e *elab) addInitial(ini *verilog.Initial) error {
	var stmts []verilog.Stmt
	switch b := ini.Body.(type) {
	case *verilog.Block:
		stmts = b.Stmts
	default:
		stmts = []verilog.Stmt{ini.Body}
	}
	for _, s := range stmts {
		as, ok := s.(*verilog.Assign)
		if !ok {
			if _, isNull := s.(*verilog.NullStmt); isNull {
				continue
			}
			return errf("unsupported", "%v: initial blocks may only contain constant assignments", ini.Pos)
		}
		id, ok := as.LHS.(*verilog.Ident)
		if !ok {
			return errf("unsupported", "%v: initial assignment to non-identifier", as.Pos)
		}
		si, ok := e.sigs[id.Name]
		if !ok {
			return errf("unsupported", "%v: initial assignment to undeclared %q", as.Pos, id.Name)
		}
		v, err := e.constEval(as.RHS)
		if err != nil {
			return err
		}
		rv := v.Resize(si.width)
		si.initVal = &rv
	}
	return nil
}

// aliasOf follows identity continuous assignments (w = v) to find the
// canonical source of a signal. Flattening introduces such aliases for
// instance clock ports.
func (e *elab) aliasOf(name string) string {
	seen := map[string]bool{}
	for !seen[name] {
		seen[name] = true
		si := e.sigs[name]
		if si == nil || len(si.contDrivers) != 1 {
			return name
		}
		d := si.contDrivers[0]
		if d.lo != 0 || d.hi != si.width-1 {
			return name
		}
		id, ok := d.rhs.(*verilog.Ident)
		if !ok {
			return name
		}
		name = id.Name
	}
	return name
}

// lhsNames returns all base signal names assigned by an lvalue.
func lhsNames(lhs verilog.Expr) []string { return verilog.LHSBaseNames(lhs) }

// synthVar returns (creating on demand) the synthesis parameter variable
// for a SynthHole.
func (e *elab) synthVar(name string, width int) *smt.Term {
	if t, ok := e.synthVars[name]; ok {
		return t
	}
	t := e.ctx.Var(name, width)
	e.synthVars[name] = t
	e.synthList = append(e.synthList, t)
	return t
}

// conv builds an expression converter with the given local shadow reader
// (nil = top-level wire resolution only).
func (e *elab) conv(local reader) *exprConv {
	read := func(name string, pos verilog.Pos) (*smt.Term, error) {
		if local != nil {
			if t, err := local(name, pos); err != nil || t != nil {
				return t, err
			}
		}
		return e.resolve(name, pos)
	}
	return &exprConv{e: e, read: read}
}

// noteDep records a combinational dependency of the current resolution
// target(s).
func (e *elab) noteDep(name string) {
	for _, tgt := range e.depTarget {
		m := e.combDeps[tgt]
		if m == nil {
			m = map[string]bool{}
			e.combDeps[tgt] = m
		}
		m[name] = true
	}
}

// resolve returns the term for a signal as seen combinationally: inputs
// and states are variables; wires expand to their defining expressions.
func (e *elab) resolve(name string, pos verilog.Pos) (*smt.Term, error) {
	if name == e.clock || e.aliasOf(name) == e.clock {
		return nil, errf("unsupported", "%v: clock %q used as data", pos, name)
	}
	si, ok := e.sigs[name]
	if !ok {
		return nil, errf("unsupported", "%v: unknown signal %q", pos, name)
	}
	e.noteDep(name)
	if si.resolved != nil {
		return si.resolved, nil
	}
	if si.isInput || si.isState {
		si.resolved = e.ctx.Var(name, si.width)
		return si.resolved, nil
	}
	if si.visiting {
		return nil, errf("comb-loop", "combinational cycle through %q", name)
	}
	si.visiting = true
	defer func() { si.visiting = false }()

	e.depTarget = append(e.depTarget, name)
	defer func() { e.depTarget = e.depTarget[:len(e.depTarget)-1] }()

	var t *smt.Term
	switch {
	case si.combBlock != nil:
		if e.combInProgress[si.combBlock] {
			// Reading a target of the block currently being elaborated
			// before it was assigned: latch behaviour.
			e.latches[name] = true
			return e.ctx.Var("%latch%"+name, si.width), nil
		}
		vals, err := e.execCombBlock(si.combBlock)
		if err != nil {
			return nil, err
		}
		t = vals[name]
		if t == nil {
			return nil, errf("unsupported", "internal: comb block did not produce %q", name)
		}
	case len(si.contDrivers) > 0:
		var err error
		t, err = e.buildContValue(name, si)
		if err != nil {
			return nil, err
		}
	default:
		// Undriven signal: reads as 0 in 2-state synthesis.
		t = e.ctx.Const(bv.Zero(si.width))
	}
	si.resolved = t
	return t, nil
}

// buildContValue splices partial continuous assignments together.
func (e *elab) buildContValue(name string, si *sigInfo) (*smt.Term, error) {
	covered := make([]bool, si.width)
	t := e.ctx.Const(bv.Zero(si.width))
	conv := e.conv(nil)
	for _, d := range si.contDrivers {
		if d.lo < 0 || d.hi >= si.width || d.hi < d.lo {
			return nil, errf("unsupported", "%v: assignment range [%d:%d] out of bounds for %q", d.pos, d.hi, d.lo, name)
		}
		for i := d.lo; i <= d.hi; i++ {
			if covered[i] {
				return nil, errf("multi-driver", "%v: bit %d of %q driven twice", d.pos, i, name)
			}
			covered[i] = true
		}
		rhs, err := conv.term(d.rhs, d.hi-d.lo+1)
		if err != nil {
			return nil, err
		}
		rhs = e.ctx.Resize(rhs, d.hi-d.lo+1)
		t = e.splice(t, rhs, d.hi, d.lo)
	}
	return t, nil
}

// splice replaces bits [hi:lo] of base with val.
func (e *elab) splice(base, val *smt.Term, hi, lo int) *smt.Term {
	w := base.Width
	parts := []*smt.Term{}
	if hi < w-1 {
		parts = append(parts, e.ctx.Extract(base, w-1, hi+1))
	}
	parts = append(parts, val)
	if lo > 0 {
		parts = append(parts, e.ctx.Extract(base, lo-1, 0))
	}
	t := parts[0]
	for _, p := range parts[1:] {
		t = e.ctx.Concat(t, p)
	}
	return t
}

// build assembles the transition system.
func (e *elab) build() (*tsys.System, error) {
	sys := &tsys.System{Name: e.m.Name}

	// Execute all clocked blocks to compute next-state functions.
	nexts := map[string]*smt.Term{}
	for _, it := range e.m.Items {
		a, ok := it.(*verilog.Always)
		if !ok || !a.IsClocked() {
			continue
		}
		blockNext, err := e.execClockedBlock(a)
		if err != nil {
			return nil, err
		}
		for name, t := range blockNext {
			nexts[name] = t
		}
	}

	// Inputs in declaration order, skipping the clock.
	for _, name := range e.order {
		si := e.sigs[name]
		if si.isInput && name != e.clock {
			sys.Inputs = append(sys.Inputs, e.ctx.Var(name, si.width))
		}
	}
	// States in declaration order.
	for _, name := range e.order {
		si := e.sigs[name]
		if !si.isState {
			continue
		}
		sv := e.ctx.Var(name, si.width)
		st := tsys.State{Var: sv, Next: nexts[name]}
		if st.Next == nil {
			st.Next = sv
		}
		if si.initVal != nil {
			st.Init = e.ctx.Const(*si.initVal)
		}
		sys.States = append(sys.States, st)
	}
	// Outputs in port order.
	for _, port := range e.m.Ports {
		si, ok := e.sigs[port]
		if !ok || si.dir != verilog.DirOutput {
			continue
		}
		t, err := e.resolve(port, verilog.Pos{})
		if err != nil {
			return nil, err
		}
		sys.Outputs = append(sys.Outputs, tsys.Output{Name: port, Expr: t})
	}
	// Force resolution of every comb block (latch detection even for
	// blocks feeding nothing).
	for _, name := range e.order {
		si := e.sigs[name]
		if e.aliasOf(name) == e.clock {
			continue // clock distribution wires from flattening
		}
		if si.combBlock != nil || len(si.contDrivers) > 0 {
			if _, err := e.resolve(name, verilog.Pos{}); err != nil {
				return nil, err
			}
		}
	}
	sys.Params = append(sys.Params, e.synthList...)
	e.pruneStates(sys)
	return sys, nil
}

// pruneStates removes states that are never read (not referenced by any
// output or any other state's next function, and not an output port).
func (e *elab) pruneStates(sys *tsys.System) {
	used := map[string]bool{}
	mark := func(t *smt.Term) {
		for _, v := range smt.CollectVars(t) {
			used[v.Name] = true
		}
	}
	for _, o := range sys.Outputs {
		mark(o.Expr)
		used[o.Name] = true
	}
	for _, st := range sys.States {
		mark(st.Next)
	}
	kept := sys.States[:0]
	for _, st := range sys.States {
		if used[st.Var.Name] {
			kept = append(kept, st)
		}
	}
	sys.States = kept
}

// ---- process execution ----

// pstate is the symbolic execution state of one process activation.
// shadow is the read view (updated by blocking assignments; in
// combinational blocks by every assignment); next holds the value each
// target will take at the end of the activation.
type pstate struct {
	shadow map[string]*smt.Term
	next   map[string]*smt.Term
}

func newPstate() *pstate {
	return &pstate{shadow: map[string]*smt.Term{}, next: map[string]*smt.Term{}}
}

func (p *pstate) clone() *pstate {
	c := newPstate()
	for k, v := range p.shadow {
		c.shadow[k] = v
	}
	for k, v := range p.next {
		c.next[k] = v
	}
	return c
}

// execEnv bundles the varying parts of process execution.
type execEnv struct {
	clocked bool
	// hold provides the value a target keeps when not assigned: the
	// state variable in clocked blocks, a latch marker in comb blocks.
	hold func(string) (*smt.Term, error)
}

// blockTargets returns the names assigned anywhere in an always block.
func blockTargets(a *verilog.Always) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	var werr error
	verilog.WalkStmts(&verilog.Module{Items: []verilog.Item{a}}, func(s verilog.Stmt, _ *verilog.Always) {
		as, ok := s.(*verilog.Assign)
		if !ok {
			return
		}
		for _, name := range lhsNames(as.LHS) {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		if len(lhsNames(as.LHS)) == 0 {
			werr = errf("unsupported", "%v: unsupported assignment target", as.Pos)
		}
	})
	return out, werr
}

// execClockedBlock computes next-state expressions for all registers
// assigned in a clocked block.
func (e *elab) execClockedBlock(a *verilog.Always) (map[string]*smt.Term, error) {
	ps := newPstate()
	env := &execEnv{
		clocked: true,
		hold: func(name string) (*smt.Term, error) {
			si, ok := e.sigs[name]
			if !ok {
				return nil, errf("unsupported", "assignment to undeclared %q", name)
			}
			return e.ctx.Var(name, si.width), nil
		},
	}
	if err := e.execStmt(a.Body, ps, env); err != nil {
		return nil, err
	}
	return ps.next, nil
}

// execCombBlock computes the value of every signal assigned in a comb
// block. Unassigned paths produce latch markers.
func (e *elab) execCombBlock(a *verilog.Always) (map[string]*smt.Term, error) {
	if vals, ok := e.combResolved[a]; ok {
		return vals, nil
	}
	if e.combInProgress[a] {
		// A read of this block's outputs while it is being elaborated is
		// a feedback path; the caller's resolve() turns it into a latch
		// marker via the in-progress check there.
		return nil, errf("comb-loop", "combinational feedback through process at %v", a.Pos)
	}
	e.combInProgress[a] = true
	defer delete(e.combInProgress, a)

	targets, err := blockTargets(a)
	if err != nil {
		return nil, err
	}
	// All outputs of the block conservatively depend on everything read.
	e.depTarget = append(e.depTarget, targets...)
	defer func() { e.depTarget = e.depTarget[:len(e.depTarget)-len(targets)] }()

	ps := newPstate()
	markers := map[string]*smt.Term{}
	env := &execEnv{
		clocked: false,
		hold: func(name string) (*smt.Term, error) {
			si, ok := e.sigs[name]
			if !ok {
				return nil, errf("unsupported", "assignment to undeclared %q", name)
			}
			mk, ok := markers[name]
			if !ok {
				mk = e.ctx.Var("%latch%"+name, si.width)
				markers[name] = mk
			}
			return mk, nil
		},
	}
	if err := e.execStmt(a.Body, ps, env); err != nil {
		return nil, err
	}
	// Latch detection: a signal whose final value still references a
	// latch marker is not assigned on every path.
	for name, t := range ps.next {
		for _, v := range smt.CollectVars(t) {
			if len(v.Name) > 7 && v.Name[:7] == "%latch%" {
				e.latches[name] = true
			}
		}
	}
	e.combResolved[a] = ps.next
	return ps.next, nil
}

// execStmt symbolically executes a statement.
func (e *elab) execStmt(s verilog.Stmt, ps *pstate, env *execEnv) error {
	switch s := s.(type) {
	case *verilog.Block:
		for _, inner := range s.Stmts {
			if err := e.execStmt(inner, ps, env); err != nil {
				return err
			}
		}
		return nil
	case *verilog.NullStmt:
		return nil
	case *verilog.Assign:
		conv := e.convFor(ps)
		rhsW, err := e.lhsWidth(s.LHS)
		if err != nil {
			return err
		}
		rhs, err := conv.term(s.RHS, rhsW)
		if err != nil {
			return err
		}
		rhs = e.ctx.Resize(rhs, rhsW)
		blocking := s.Blocking || !env.clocked
		return e.assignTo(s.LHS, rhs, ps, env, blocking)
	case *verilog.If:
		conv := e.convFor(ps)
		cond, err := conv.cond(s.Cond)
		if err != nil {
			return err
		}
		thenPS := ps.clone()
		elsePS := ps.clone()
		if err := e.execStmt(s.Then, thenPS, env); err != nil {
			return err
		}
		if s.Else != nil {
			if err := e.execStmt(s.Else, elsePS, env); err != nil {
				return err
			}
		}
		return e.merge(ps, cond, thenPS, elsePS, env)
	case *verilog.Case:
		return e.execCase(s, ps, env)
	}
	return errf("unsupported", "%v: statement %T", s.NodePos(), s)
}

// convFor builds an expression converter reading through the pstate's
// shadow map.
func (e *elab) convFor(ps *pstate) *exprConv {
	local := func(name string, pos verilog.Pos) (*smt.Term, error) {
		if t, ok := ps.shadow[name]; ok {
			return t, nil
		}
		return nil, nil
	}
	return e.conv(local)
}

// merge folds two branch states back into ps under cond.
func (e *elab) merge(ps *pstate, cond *smt.Term, thenPS, elsePS *pstate, env *execEnv) error {
	mergeMap := func(get func(*pstate) map[string]*smt.Term) error {
		names := map[string]bool{}
		for k := range get(thenPS) {
			names[k] = true
		}
		for k := range get(elsePS) {
			names[k] = true
		}
		for name := range names {
			tv, tok := get(thenPS)[name]
			ev, eok := get(elsePS)[name]
			var err error
			if !tok {
				tv, err = e.prevOr(name, get(ps), env)
				if err != nil {
					return err
				}
			}
			if !eok {
				ev, err = e.prevOr(name, get(ps), env)
				if err != nil {
					return err
				}
			}
			if tv == ev {
				get(ps)[name] = tv
			} else {
				get(ps)[name] = e.ctx.Ite(cond, tv, ev)
			}
		}
		return nil
	}
	if err := mergeMap(func(p *pstate) map[string]*smt.Term { return p.next }); err != nil {
		return err
	}
	return mergeMap(func(p *pstate) map[string]*smt.Term { return p.shadow })
}

// prevOr returns the pre-branch value of name from m, or the hold value.
func (e *elab) prevOr(name string, m map[string]*smt.Term, env *execEnv) (*smt.Term, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	return env.hold(name)
}

// execCase lowers a case statement to a nested ITE chain.
func (e *elab) execCase(s *verilog.Case, ps *pstate, env *execEnv) error {
	conv := e.convFor(ps)
	subjW, err := conv.selfWidth(s.Subject)
	if err != nil {
		return err
	}
	// Compute max width over labels.
	for _, item := range s.Items {
		for _, l := range item.Exprs {
			w, err := conv.selfWidth(l)
			if err != nil {
				return err
			}
			subjW = max(subjW, w)
		}
	}
	subj, err := conv.term(s.Subject, subjW)
	if err != nil {
		return err
	}
	subj = e.ctx.Resize(subj, subjW)

	// Build an if-else chain. The default arm applies when no label
	// matches regardless of its position, so it is moved to the end.
	type arm struct {
		cond *smt.Term // nil for default
		body verilog.Stmt
	}
	var arms []arm
	var defaultArm *arm
	for _, item := range s.Items {
		if item.Exprs == nil {
			defaultArm = &arm{body: item.Body}
			continue
		}
		var cond *smt.Term
		for _, l := range item.Exprs {
			lc, err := e.caseLabelCond(s.Kind, subj, l, conv, subjW)
			if err != nil {
				return err
			}
			if cond == nil {
				cond = lc
			} else {
				cond = e.ctx.Or(cond, lc)
			}
		}
		arms = append(arms, arm{cond: cond, body: item.Body})
	}
	if defaultArm != nil {
		arms = append(arms, *defaultArm)
	}

	var exec func(i int, ps *pstate) error
	exec = func(i int, ps *pstate) error {
		if i >= len(arms) {
			return nil
		}
		a := arms[i]
		if a.cond == nil {
			return e.execStmt(a.body, ps, env)
		}
		thenPS := ps.clone()
		elsePS := ps.clone()
		if err := e.execStmt(a.body, thenPS, env); err != nil {
			return err
		}
		if err := exec(i+1, elsePS); err != nil {
			return err
		}
		return e.merge(ps, a.cond, thenPS, elsePS, env)
	}
	return exec(0, ps)
}

// caseLabelCond builds the match condition for one case label.
func (e *elab) caseLabelCond(kind verilog.CaseKind, subj *smt.Term, label verilog.Expr, conv *exprConv, w int) (*smt.Term, error) {
	if n, ok := label.(*verilog.Number); ok && n.Bits.HasUnknown() {
		switch kind {
		case verilog.CaseZ, verilog.CaseX:
			// Masked compare: x/z bits are don't care.
			bits := n.Bits.Resize(w)
			mask := bits.Known
			val := bits.Val.And(mask)
			return e.ctx.Eq(e.ctx.And(subj, e.ctx.Const(mask)), e.ctx.Const(val)), nil
		default:
			// 2-state synthesis: labels with x never match.
			return e.ctx.False(), nil
		}
	}
	lt, err := conv.term(label, w)
	if err != nil {
		return nil, err
	}
	return e.ctx.Eq(subj, e.ctx.Resize(lt, w)), nil
}

// lhsWidth computes the width of an assignment target.
func (e *elab) lhsWidth(lhs verilog.Expr) (int, error) {
	switch l := lhs.(type) {
	case *verilog.Ident:
		si, ok := e.sigs[l.Name]
		if !ok {
			return 0, errf("unsupported", "%v: assignment to undeclared %q", l.Pos, l.Name)
		}
		return si.width, nil
	case *verilog.Index:
		return 1, nil
	case *verilog.PartSelect:
		hi, err := e.constEvalInt(l.MSB)
		if err != nil {
			return 0, err
		}
		lo, err := e.constEvalInt(l.LSB)
		if err != nil {
			return 0, err
		}
		return int(hi-lo) + 1, nil
	case *verilog.Concat:
		total := 0
		for _, p := range l.Parts {
			w, err := e.lhsWidth(p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	}
	return 0, errf("unsupported", "%v: assignment target %T", lhs.NodePos(), lhs)
}

// assignTo updates ps for an assignment of rhs (already sized) to lhs.
// blocking assignments also update the read shadow.
func (e *elab) assignTo(lhs verilog.Expr, rhs *smt.Term, ps *pstate, env *execEnv, blocking bool) error {
	set := func(name string, t *smt.Term) {
		ps.next[name] = t
		if blocking {
			ps.shadow[name] = t
		}
	}
	switch l := lhs.(type) {
	case *verilog.Ident:
		if _, ok := e.sigs[l.Name]; !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", l.Pos, l.Name)
		}
		set(l.Name, rhs)
		return nil
	case *verilog.Index:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return errf("unsupported", "%v: nested index target", l.Pos)
		}
		si, ok := e.sigs[id.Name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", l.Pos, id.Name)
		}
		cur, err := e.prevOr(id.Name, ps.next, env)
		if err != nil {
			return err
		}
		if idx, err2 := e.constEvalInt(l.Idx); err2 == nil {
			b := int(idx) - si.lsb
			if b < 0 || b >= si.width {
				return errf("unsupported", "%v: bit %d out of range for %q", l.Pos, idx, id.Name)
			}
			set(id.Name, e.splice(cur, e.ctx.Resize(rhs, 1), b, b))
			return nil
		}
		idxT, err := e.convFor(ps).term(l.Idx, 0)
		if err != nil {
			return err
		}
		// cur & ~(1<<idx) | (bit << idx)
		w := si.width
		idxW := e.ctx.Resize(idxT, w)
		if si.lsb != 0 {
			idxW = e.ctx.Sub(idxW, e.ctx.ConstU(w, uint64(si.lsb)))
		}
		one := e.ctx.ConstU(w, 1)
		mask := e.ctx.Not(e.ctx.Shl(one, idxW))
		bit := e.ctx.Shl(e.ctx.ZeroExt(e.ctx.Resize(rhs, 1), w), idxW)
		set(id.Name, e.ctx.Or(e.ctx.And(cur, mask), bit))
		return nil
	case *verilog.PartSelect:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return errf("unsupported", "%v: nested part-select target", l.Pos)
		}
		si, ok := e.sigs[id.Name]
		if !ok {
			return errf("unsupported", "%v: assignment to undeclared %q", l.Pos, id.Name)
		}
		hi, err := e.constEvalInt(l.MSB)
		if err != nil {
			return err
		}
		lo, err := e.constEvalInt(l.LSB)
		if err != nil {
			return err
		}
		hb, lb := int(hi)-si.lsb, int(lo)-si.lsb
		if lb < 0 || hb >= si.width || hb < lb {
			return errf("unsupported", "%v: part select [%d:%d] out of range for %q", l.Pos, hi, lo, id.Name)
		}
		cur, err := e.prevOr(id.Name, ps.next, env)
		if err != nil {
			return err
		}
		set(id.Name, e.splice(cur, e.ctx.Resize(rhs, hb-lb+1), hb, lb))
		return nil
	case *verilog.Concat:
		// MSB-first split of rhs.
		offset := rhs.Width
		for _, p := range l.Parts {
			w, err := e.lhsWidth(p)
			if err != nil {
				return err
			}
			offset -= w
			part := e.ctx.Extract(rhs, offset+w-1, offset)
			if err := e.assignTo(p, part, ps, env, blocking); err != nil {
				return err
			}
		}
		return nil
	}
	return errf("unsupported", "%v: assignment target %T", lhs.NodePos(), lhs)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
