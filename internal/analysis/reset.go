package analysis

import (
	"strings"

	"rtlrepair/internal/verilog"
)

// resetPass checks sensitivity-list consistency of clocked processes.
// The synthesizable subset (like the paper's benchmark preparation) is
// single-clock and synchronous-reset only: a second edge trigger is an
// asynchronous reset and fails elaboration, as does a second clock
// domain. Level entries mixed into an edge list are tolerated by
// elaboration (the edge wins) but almost always a typo, so they warn.
func (a *analyzer) resetPass() {
	clocks := map[string]bool{}
	clockPos := map[string]verilog.Pos{}
	for _, it := range a.m.Items {
		alw, ok := it.(*verilog.Always)
		if !ok || !alw.IsClocked() {
			continue
		}
		var edges, levels []verilog.SenseItem
		for _, s := range alw.Senses {
			if s.Edge == verilog.EdgeLevel {
				levels = append(levels, s)
			} else {
				edges = append(edges, s)
			}
		}
		if len(edges) > 1 {
			var names []string
			for _, e := range edges[1:] {
				names = append(names, e.Signal)
			}
			a.errf(RuleAsyncReset, alw.Pos, edges[1].Signal,
				"multiple edge triggers (asynchronous reset on %s is unsupported; use a synchronous reset)",
				strings.Join(names, ", "))
			continue
		}
		clocks[edges[0].Signal] = true
		if _, ok := clockPos[edges[0].Signal]; !ok {
			clockPos[edges[0].Signal] = alw.Pos
		}
		if len(levels) > 0 {
			a.warnf(RuleMixedSensitivity, alw.Pos, levels[0].Signal,
				"level-sensitive entry %q mixed into an edge-triggered list", levels[0].Signal)
		}
	}
	if len(clocks) > 1 {
		names := sortedNames(clocks)
		a.errf(RuleNotSynthesizable, clockPos[names[1]], names[1],
			"multiple clock domains (%s): single-clock designs only", strings.Join(names, ", "))
	}
}
