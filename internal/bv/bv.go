// Package bv implements arbitrary-width two-state bit-vector values with
// the operations needed by the SMT layer, the simulators and the Verilog
// frontend. Widths are fixed per value; all operations follow SMT-LIB
// QF_BV semantics (modular arithmetic, unsigned by default).
package bv

import (
	"fmt"
	"strings"
)

// BV is an immutable bit-vector value of a fixed width. The zero value is
// the zero-width empty vector. Bits beyond Width are always kept zero
// (values are normalized on construction).
type BV struct {
	width int
	words []uint64
}

const wordBits = 64

func wordsFor(width int) int { return (width + wordBits - 1) / wordBits }

// New returns a bit-vector of the given width holding val truncated to width.
func New(width int, val uint64) BV {
	if width < 0 {
		panic("bv: negative width")
	}
	b := BV{width: width, words: make([]uint64, wordsFor(width))}
	if len(b.words) > 0 {
		b.words[0] = val
	}
	b.norm()
	return b
}

// Zero returns the all-zeros vector of the given width.
func Zero(width int) BV { return New(width, 0) }

// Ones returns the all-ones vector of the given width.
func Ones(width int) BV {
	b := New(width, 0)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.norm()
	return b
}

// One returns the vector of the given width holding the value 1.
func One(width int) BV { return New(width, 1) }

// FromWords builds a bit-vector from little-endian 64-bit words.
func FromWords(width int, words []uint64) BV {
	b := BV{width: width, words: make([]uint64, wordsFor(width))}
	copy(b.words, words)
	b.norm()
	return b
}

// FromBool returns a 1-bit vector: 1 for true, 0 for false.
func FromBool(v bool) BV {
	if v {
		return New(1, 1)
	}
	return New(1, 0)
}

// FromBinary parses a string of '0'/'1' runes, most-significant bit first,
// into a bit-vector whose width equals the string length. Underscores are
// ignored.
func FromBinary(s string) (BV, error) {
	s = strings.ReplaceAll(s, "_", "")
	b := Zero(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			b = b.WithBit(len(s)-1-i, true)
		default:
			return BV{}, fmt.Errorf("bv: invalid binary digit %q", r)
		}
	}
	return b, nil
}

// norm clears bits above width in the top word.
func (b *BV) norm() {
	if b.width == 0 {
		b.words = nil
		return
	}
	rem := b.width % wordBits
	if rem != 0 {
		b.words[len(b.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Width reports the width in bits.
func (b BV) Width() int { return b.width }

// Words returns a copy of the little-endian word representation.
func (b BV) Words() []uint64 {
	out := make([]uint64, len(b.words))
	copy(out, b.words)
	return out
}

// Uint64 returns the low 64 bits of the value.
func (b BV) Uint64() uint64 {
	if len(b.words) == 0 {
		return 0
	}
	return b.words[0]
}

// IsZero reports whether every bit is zero.
func (b BV) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsOnes reports whether every bit is one.
func (b BV) IsOnes() bool { return b.Eq(Ones(b.width)) }

// Bit reports bit i (0 = least significant).
func (b BV) Bit(i int) bool {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bv: bit index %d out of range for width %d", i, b.width))
	}
	return b.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// WithBit returns a copy of b with bit i set to v.
func (b BV) WithBit(i int, v bool) BV {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bv: bit index %d out of range for width %d", i, b.width))
	}
	out := b.clone()
	if v {
		out.words[i/wordBits] |= uint64(1) << (uint(i) % wordBits)
	} else {
		out.words[i/wordBits] &^= uint64(1) << (uint(i) % wordBits)
	}
	return out
}

func (b BV) clone() BV {
	out := BV{width: b.width, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

func (b BV) checkSameWidth(o BV, op string) {
	if b.width != o.width {
		panic(fmt.Sprintf("bv: %s width mismatch %d vs %d", op, b.width, o.width))
	}
}

// Eq reports value equality (requires equal widths).
func (b BV) Eq(o BV) bool {
	b.checkSameWidth(o, "eq")
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Ult reports unsigned b < o.
func (b BV) Ult(o BV) bool {
	b.checkSameWidth(o, "ult")
	for i := len(b.words) - 1; i >= 0; i-- {
		if b.words[i] != o.words[i] {
			return b.words[i] < o.words[i]
		}
	}
	return false
}

// Slt reports signed b < o (two's complement).
func (b BV) Slt(o BV) bool {
	b.checkSameWidth(o, "slt")
	if b.width == 0 {
		return false
	}
	sb, so := b.Bit(b.width-1), o.Bit(o.width-1)
	if sb != so {
		return sb
	}
	return b.Ult(o)
}

// Not returns the bitwise complement.
func (b BV) Not() BV {
	out := b.clone()
	for i := range out.words {
		out.words[i] = ^out.words[i]
	}
	out.norm()
	return out
}

// And returns the bitwise AND.
func (b BV) And(o BV) BV {
	b.checkSameWidth(o, "and")
	out := b.clone()
	for i := range out.words {
		out.words[i] &= o.words[i]
	}
	return out
}

// Or returns the bitwise OR.
func (b BV) Or(o BV) BV {
	b.checkSameWidth(o, "or")
	out := b.clone()
	for i := range out.words {
		out.words[i] |= o.words[i]
	}
	return out
}

// Xor returns the bitwise XOR.
func (b BV) Xor(o BV) BV {
	b.checkSameWidth(o, "xor")
	out := b.clone()
	for i := range out.words {
		out.words[i] ^= o.words[i]
	}
	return out
}

// Add returns (b + o) mod 2^width.
func (b BV) Add(o BV) BV {
	b.checkSameWidth(o, "add")
	out := b.clone()
	var carry uint64
	for i := range out.words {
		s1 := out.words[i] + o.words[i]
		c1 := boolToU64(s1 < out.words[i])
		s2 := s1 + carry
		c2 := boolToU64(s2 < s1)
		out.words[i] = s2
		carry = c1 | c2
	}
	out.norm()
	return out
}

// Sub returns (b - o) mod 2^width.
func (b BV) Sub(o BV) BV { return b.Add(o.Neg()) }

// Neg returns the two's complement negation.
func (b BV) Neg() BV { return b.Not().Add(One(b.width)) }

// Mul returns (b * o) mod 2^width.
func (b BV) Mul(o BV) BV {
	b.checkSameWidth(o, "mul")
	out := Zero(b.width)
	acc := b
	for i := 0; i < o.width; i++ {
		if o.Bit(i) {
			out = out.Add(acc)
		}
		acc = acc.Shl(1)
	}
	return out
}

// Udiv returns unsigned division; division by zero yields all ones
// (SMT-LIB semantics).
func (b BV) Udiv(o BV) BV {
	q, _ := b.udivRem(o)
	return q
}

// Urem returns the unsigned remainder; remainder by zero yields b.
func (b BV) Urem(o BV) BV {
	_, r := b.udivRem(o)
	return r
}

func (b BV) udivRem(o BV) (q, r BV) {
	b.checkSameWidth(o, "udiv")
	if o.IsZero() {
		return Ones(b.width), b
	}
	q = Zero(b.width)
	r = Zero(b.width)
	for i := b.width - 1; i >= 0; i-- {
		r = r.Shl(1)
		if b.Bit(i) {
			r = r.WithBit(0, true)
		}
		if !r.Ult(o) {
			r = r.Sub(o)
			q = q.WithBit(i, true)
		}
	}
	return q, r
}

// Shl returns b shifted left by n bits (zeros shifted in).
func (b BV) Shl(n int) BV {
	if n < 0 {
		panic("bv: negative shift")
	}
	if n >= b.width {
		return Zero(b.width)
	}
	out := Zero(b.width)
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := len(out.words) - 1; i >= wordShift; i-- {
		w := b.words[i-wordShift] << bitShift
		if bitShift > 0 && i-wordShift-1 >= 0 {
			w |= b.words[i-wordShift-1] >> (wordBits - bitShift)
		}
		out.words[i] = w
	}
	out.norm()
	return out
}

// Lshr returns b logically shifted right by n bits.
func (b BV) Lshr(n int) BV {
	if n < 0 {
		panic("bv: negative shift")
	}
	if n >= b.width {
		return Zero(b.width)
	}
	out := Zero(b.width)
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := 0; i+wordShift < len(b.words); i++ {
		w := b.words[i+wordShift] >> bitShift
		if bitShift > 0 && i+wordShift+1 < len(b.words) {
			w |= b.words[i+wordShift+1] << (wordBits - bitShift)
		}
		out.words[i] = w
	}
	out.norm()
	return out
}

// Ashr returns b arithmetically shifted right by n bits.
func (b BV) Ashr(n int) BV {
	if b.width == 0 || !b.Bit(b.width-1) {
		return b.Lshr(n)
	}
	if n >= b.width {
		return Ones(b.width)
	}
	out := b.Lshr(n)
	for i := b.width - n; i < b.width; i++ {
		out = out.WithBit(i, true)
	}
	return out
}

// ShlBV shifts left by an amount given as a bit-vector (Verilog semantics:
// amounts >= width yield zero).
func (b BV) ShlBV(amt BV) BV {
	n, ok := amt.toShift(b.width)
	if !ok {
		return Zero(b.width)
	}
	return b.Shl(n)
}

// LshrBV shifts logically right by a bit-vector amount.
func (b BV) LshrBV(amt BV) BV {
	n, ok := amt.toShift(b.width)
	if !ok {
		return Zero(b.width)
	}
	return b.Lshr(n)
}

// AshrBV shifts arithmetically right by a bit-vector amount.
func (b BV) AshrBV(amt BV) BV {
	n, ok := amt.toShift(b.width)
	if !ok {
		if b.width > 0 && b.Bit(b.width-1) {
			return Ones(b.width)
		}
		return Zero(b.width)
	}
	return b.Ashr(n)
}

// toShift converts amt to a shift count; ok is false when amt >= limit.
func (amt BV) toShift(limit int) (int, bool) {
	for i := 1; i < len(amt.words); i++ {
		if amt.words[i] != 0 {
			return 0, false
		}
	}
	v := amt.Uint64()
	if v >= uint64(limit) {
		return 0, false
	}
	return int(v), true
}

// Concat returns {b, o}: b occupies the most-significant bits.
func (b BV) Concat(o BV) BV {
	out := Zero(b.width + o.width)
	for i := 0; i < o.width; i++ {
		if o.Bit(i) {
			out = out.WithBit(i, true)
		}
	}
	for i := 0; i < b.width; i++ {
		if b.Bit(i) {
			out = out.WithBit(o.width+i, true)
		}
	}
	return out
}

// Extract returns bits [hi:lo] inclusive as a new vector of width hi-lo+1.
func (b BV) Extract(hi, lo int) BV {
	if lo < 0 || hi < lo || hi >= b.width {
		panic(fmt.Sprintf("bv: extract [%d:%d] out of range for width %d", hi, lo, b.width))
	}
	out := Zero(hi - lo + 1)
	for i := lo; i <= hi; i++ {
		if b.Bit(i) {
			out = out.WithBit(i-lo, true)
		}
	}
	return out
}

// ZeroExt returns b zero-extended to the given width (>= current width).
func (b BV) ZeroExt(width int) BV {
	if width < b.width {
		panic("bv: zero-extension narrower than value")
	}
	out := Zero(width)
	copy(out.words, b.words)
	out.norm()
	return out
}

// SignExt returns b sign-extended to the given width.
func (b BV) SignExt(width int) BV {
	out := b.ZeroExt(width)
	if b.width > 0 && b.Bit(b.width-1) {
		for i := b.width; i < width; i++ {
			out = out.WithBit(i, true)
		}
	}
	return out
}

// Resize truncates or zero-extends to the given width.
func (b BV) Resize(width int) BV {
	if width == b.width {
		return b
	}
	if width > b.width {
		return b.ZeroExt(width)
	}
	return b.Extract(width-1, 0)
}

// ReduceOr returns the 1-bit OR of all bits.
func (b BV) ReduceOr() BV { return FromBool(!b.IsZero()) }

// ReduceAnd returns the 1-bit AND of all bits.
func (b BV) ReduceAnd() BV { return FromBool(b.width > 0 && b.IsOnes()) }

// ReduceXor returns the 1-bit XOR (parity) of all bits.
func (b BV) ReduceXor() BV {
	var p uint64
	for _, w := range b.words {
		p ^= w
	}
	p ^= p >> 32
	p ^= p >> 16
	p ^= p >> 8
	p ^= p >> 4
	p ^= p >> 2
	p ^= p >> 1
	return FromBool(p&1 == 1)
}

// PopCount returns the number of set bits.
func (b BV) PopCount() int {
	n := 0
	for i := 0; i < b.width; i++ {
		if b.Bit(i) {
			n++
		}
	}
	return n
}

// String formats the value as width'bBITS for narrow values and width'hHEX
// for wide ones.
func (b BV) String() string {
	if b.width <= 16 {
		return fmt.Sprintf("%d'b%s", b.width, b.BinaryString())
	}
	return fmt.Sprintf("%d'h%s", b.width, b.HexString())
}

// BinaryString returns the bits most-significant first.
func (b BV) BinaryString() string {
	if b.width == 0 {
		return ""
	}
	var sb strings.Builder
	for i := b.width - 1; i >= 0; i-- {
		if b.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// HexString returns a hex rendering, most significant digit first.
func (b BV) HexString() string {
	digits := (b.width + 3) / 4
	if digits == 0 {
		return "0"
	}
	var sb strings.Builder
	for i := digits - 1; i >= 0; i-- {
		var d uint64
		for j := 3; j >= 0; j-- {
			bit := i*4 + j
			d <<= 1
			if bit < b.width && b.Bit(bit) {
				d |= 1
			}
		}
		fmt.Fprintf(&sb, "%x", d)
	}
	return sb.String()
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
