// Package rtlrepair is a from-scratch Go implementation of "RTL-Repair:
// Fast Symbolic Repair of Hardware Design Code" (Laeufer et al., ASPLOS
// 2024), including every substrate the paper depends on: a Verilog
// frontend, an elaborator to word-level transition systems, a
// bit-blasting SMT solver over a CDCL SAT core, three simulation
// backends, the symbolic template-based repair engine with adaptive
// windowing, the OSDD metric, a CirFix-style genetic baseline, the
// benchmark corpus, and the evaluation harness that regenerates the
// paper's tables.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured results. The top-level
// bench_test.go regenerates each table as a Go benchmark.
package rtlrepair
