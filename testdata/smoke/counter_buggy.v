// Buggy variant for the CI observability smoke test: the reset branch
// forgets to clear count (the paper's Figure 1a defect).
module first_counter(input clock, input reset, input enable,
                     output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset == 1'b1) begin
    overflow <= 1'b0;
  end else if (enable == 1'b1) begin
    count <= count + 1;
  end
  if (count == 4'b1111) begin
    overflow <= 1'b1;
  end
end
endmodule
