// Package lint implements RTL-Repair's static-analysis preprocessing
// (§4.1). The paper runs Verilator as a linter and automatically fixes
// two classes of issues that keep a design from synthesizing: the wrong
// kind of procedural assignment for the process type, and inferred
// latches, which get a default value of zero. We additionally complete
// level-sensitive sensitivity lists (Verilator's COMBDLY/ALWCOMBORDER
// family of warnings), which is how several "incorrect sensitivity list"
// benchmarks are repaired by preprocessing alone.
package lint

import (
	"errors"
	"fmt"

	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/verilog"
)

// FixKind enumerates automatic fixes.
type FixKind int

// Fix kinds.
const (
	FixAssignKind FixKind = iota
	FixSensitivity
	FixLatchDefault
)

func (k FixKind) String() string {
	switch k {
	case FixAssignKind:
		return "assignment-kind"
	case FixSensitivity:
		return "sensitivity-list"
	case FixLatchDefault:
		return "latch-default"
	}
	return "unknown"
}

// Fix describes one applied preprocessing change.
type Fix struct {
	Kind   FixKind
	Pos    verilog.Pos
	Signal string
	Desc   string
}

// Preprocess returns a repaired clone of m together with the list of
// fixes that were applied. The input module is not modified. Lib
// provides instantiated modules (they are preprocessed transitively via
// flattening inside elaboration; lint itself only touches the top
// module, as in the paper's per-file operation).
func Preprocess(m *verilog.Module, lib map[string]*verilog.Module) (*verilog.Module, []Fix, error) {
	out := verilog.CloneModule(m)
	var fixes []Fix

	fixes = append(fixes, fixAssignKinds(out)...)
	fixes = append(fixes, fixSensitivity(out)...)

	latchFixes, err := fixLatches(out, lib)
	if err != nil {
		return out, fixes, err
	}
	fixes = append(fixes, latchFixes...)
	return out, fixes, nil
}

// fixAssignKinds converts blocking assignments in clocked processes to
// non-blocking and vice versa in combinational processes.
func fixAssignKinds(m *verilog.Module) []Fix {
	var fixes []Fix
	verilog.WalkStmts(m, func(s verilog.Stmt, parent *verilog.Always) {
		a, ok := s.(*verilog.Assign)
		if !ok || parent == nil {
			return
		}
		if parent.IsClocked() && a.Blocking {
			a.Blocking = false
			fixes = append(fixes, Fix{Kind: FixAssignKind, Pos: a.Pos,
				Desc: fmt.Sprintf("%v: blocking assignment in clocked process changed to non-blocking", a.Pos)})
		} else if !parent.IsClocked() && !a.Blocking {
			a.Blocking = true
			fixes = append(fixes, Fix{Kind: FixAssignKind, Pos: a.Pos,
				Desc: fmt.Sprintf("%v: non-blocking assignment in combinational process changed to blocking", a.Pos)})
		}
	})
	return fixes
}

// fixSensitivity replaces incomplete level-sensitive lists with @(*).
func fixSensitivity(m *verilog.Module) []Fix {
	var fixes []Fix
	for _, it := range m.Items {
		a, ok := it.(*verilog.Always)
		if !ok || a.Star || a.IsClocked() || len(a.Senses) == 0 {
			continue
		}
		listed := map[string]bool{}
		for _, s := range a.Senses {
			listed[s.Signal] = true
		}
		reads := map[string]bool{}
		collectReads(a.Body, reads)
		// Assigned signals read back in the same block are not required
		// in the list (they are the latch/feedback case handled later).
		missing := false
		for name := range reads {
			if !listed[name] {
				missing = true
				break
			}
		}
		if missing {
			a.Star = true
			a.Senses = nil
			fixes = append(fixes, Fix{Kind: FixSensitivity, Pos: a.Pos,
				Desc: fmt.Sprintf("%v: incomplete sensitivity list replaced with @(*)", a.Pos)})
		}
	}
	return fixes
}

// collectReads gathers identifiers *read* by a statement: right-hand
// sides, conditions, case subjects and labels, and index expressions on
// assignment targets — but not the targets themselves.
func collectReads(s verilog.Stmt, reads map[string]bool) {
	addExpr := func(e verilog.Expr) {
		verilog.WalkStmtExprs(&verilog.Assign{RHS: e, LHS: &verilog.Ident{Name: "_"}}, func(x verilog.Expr) bool {
			if id, ok := x.(*verilog.Ident); ok && id.Name != "_" {
				reads[id.Name] = true
			}
			return true
		})
	}
	switch s := s.(type) {
	case *verilog.Block:
		for _, inner := range s.Stmts {
			collectReads(inner, reads)
		}
	case *verilog.If:
		addExpr(s.Cond)
		collectReads(s.Then, reads)
		if s.Else != nil {
			collectReads(s.Else, reads)
		}
	case *verilog.Case:
		addExpr(s.Subject)
		for _, item := range s.Items {
			for _, e := range item.Exprs {
				addExpr(e)
			}
			collectReads(item.Body, reads)
		}
	case *verilog.Assign:
		addExpr(s.RHS)
		collectLHSIndexReads(s.LHS, reads)
	case *verilog.For:
		addExpr(s.Init)
		addExpr(s.Cond)
		addExpr(s.Step)
		collectReads(s.Body, reads)
	}
}

func collectLHSIndexReads(lhs verilog.Expr, reads map[string]bool) {
	addExpr := func(e verilog.Expr) {
		if e == nil {
			return
		}
		verilog.WalkStmtExprs(&verilog.Assign{RHS: e, LHS: &verilog.Ident{Name: "_"}}, func(x verilog.Expr) bool {
			if id, ok := x.(*verilog.Ident); ok && id.Name != "_" {
				reads[id.Name] = true
			}
			return true
		})
	}
	switch l := lhs.(type) {
	case *verilog.Index:
		addExpr(l.Idx)
	case *verilog.PartSelect:
		addExpr(l.MSB)
		addExpr(l.LSB)
	case *verilog.Concat:
		for _, p := range l.Parts {
			collectLHSIndexReads(p, reads)
		}
	}
}

// fixLatches elaborates the design and, for every latch diagnostic,
// inserts a zero default assignment at the start of the responsible
// combinational process, repeating until elaboration stops reporting
// latches (or fails differently).
func fixLatches(m *verilog.Module, lib map[string]*verilog.Module) ([]Fix, error) {
	var fixes []Fix
	for iter := 0; iter < 8; iter++ {
		_, _, err := synth.Elaborate(smt.NewContext(), m, synth.Options{Lib: lib})
		if err == nil {
			return fixes, nil
		}
		var se *synth.ErrSynth
		if !errors.As(err, &se) || se.Kind != "latch" || len(se.Signals) == 0 {
			// Other synthesis problems are not lint's to fix; they are
			// reported to the repair engine which will classify the
			// design as not repairable.
			return fixes, nil
		}
		static, serr := synth.Static(m)
		if serr != nil {
			return fixes, nil
		}
		progress := false
		for _, name := range se.Signals {
			blk := findCombBlockAssigning(m, name)
			if blk == nil {
				continue
			}
			width := 1
			if d, ok := static.Signals[name]; ok {
				width = d.Width
			}
			def := &verilog.Assign{
				Pos:      blk.NodePos(),
				LHS:      &verilog.Ident{Name: name},
				RHS:      verilog.MkNumber(width, 0),
				Blocking: true,
			}
			prependStmt(blk, def)
			progress = true
			fixes = append(fixes, Fix{Kind: FixLatchDefault, Pos: blk.NodePos(), Signal: name,
				Desc: fmt.Sprintf("%v: latch on %q removed by inserting default assignment to 0", blk.NodePos(), name)})
		}
		if !progress {
			return fixes, nil
		}
	}
	return fixes, nil
}

// findCombBlockAssigning locates the combinational always block that
// assigns the given signal.
func findCombBlockAssigning(m *verilog.Module, name string) *verilog.Always {
	var found *verilog.Always
	verilog.WalkStmts(m, func(s verilog.Stmt, parent *verilog.Always) {
		if found != nil || parent == nil || parent.IsClocked() {
			return
		}
		if a, ok := s.(*verilog.Assign); ok {
			if id, ok := a.LHS.(*verilog.Ident); ok && id.Name == name {
				found = parent
			}
		}
	})
	return found
}

// prependStmt inserts a statement at the start of an always body,
// wrapping non-block bodies in a begin/end.
func prependStmt(a *verilog.Always, s verilog.Stmt) {
	if b, ok := a.Body.(*verilog.Block); ok {
		b.Stmts = append([]verilog.Stmt{s}, b.Stmts...)
		return
	}
	a.Body = &verilog.Block{Pos: a.Pos, Stmts: []verilog.Stmt{s, a.Body}}
}
