package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rtlrepair/internal/analysis"
	"rtlrepair/internal/bv"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

// The portfolio engine runs the template loop of Figure 3 as a set of
// concurrent attempts, one per (localization pass, template) pair. Each
// attempt owns a fresh smt.Context — the hash-consed term DAG is mutable
// and must not be shared across goroutines — and a cooperative stop flag
// that sibling attempts set once their result makes this one irrelevant:
//
//   - an acceptable repair (Σφ ≤ MaxAcceptableChanges) at (pass, i)
//     cancels the same pass's templates after i and every later pass;
//   - a large (fallback) repair cancels every later pass, because the
//     sequential engine never starts the unpruned pass once any repair
//     exists.
//
// Selection happens only after every attempt has finished (or been
// cancelled), by the sequential engine's precedence: earliest acceptable
// template of the earliest pass, else the smallest fallback of the
// earliest pass that has one. The outcome is therefore deterministic —
// independent of worker count and goroutine scheduling.

// attempt is one (localization pass, template) portfolio entry.
type attempt struct {
	pass    int
	tmplIdx int
	tmpl    Template
	loc     *analysis.Localization

	// stop cancels the attempt cooperatively; the SAT search loop polls
	// it. Siblings only ever set it to true.
	stop atomic.Bool

	tres      TemplateResult
	candidate *Result // verified repair (acceptable or fallback), nil otherwise
}

type portfolio struct {
	fixed    *verilog.Module
	info     *synth.Info
	ctr      *trace.Trace
	init     map[string]bv.XBV
	baseRun  *sim.RunResult
	deadline time.Time
	opts     Options
	attempts []*attempt
	obs      obs.Scope // the "portfolio" span's scope
}

// workerCount resolves the Workers knob: 0 picks one worker per
// available CPU; 1 selects the exact sequential engine.
func (o *Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runPortfolio fills res with the outcome of running every
// (pass, template) attempt concurrently on the given number of workers.
// res already carries the preprocessing/localization results. A
// cancelled ctx is mirrored onto every attempt's cooperative stop flag,
// so running SAT searches abort at their next poll; the per-attempt
// statistics accumulated up to that point still aggregate onto res.
func runPortfolio(ctx context.Context, res *Result, fixed *verilog.Module, info *synth.Info,
	ctr *trace.Trace, init map[string]bv.XBV, baseRun *sim.RunResult,
	deadline time.Time, opts Options, passes []*analysis.Localization, workers int,
	sc obs.Scope) {

	p := &portfolio{
		fixed:    fixed,
		info:     info,
		ctr:      ctr,
		init:     init,
		baseRun:  baseRun,
		deadline: deadline,
		opts:     opts,
	}
	for pi, loc := range passes {
		for ti, tmpl := range opts.Templates {
			p.attempts = append(p.attempts, &attempt{pass: pi, tmplIdx: ti, tmpl: tmpl, loc: loc})
		}
	}
	if workers > len(p.attempts) {
		workers = len(p.attempts)
	}
	p.obs = sc.Start("portfolio")
	if sp := p.obs.Span; sp != nil {
		sp.SetInt("workers", int64(workers))
		sp.SetInt("attempts", int64(len(p.attempts)))
	}
	defer p.obs.End()

	// Mirror context cancellation onto every attempt's stop flag: the
	// SAT loops poll the flags, so cancellation is immediate rather than
	// waiting for the next wall-clock deadline check.
	if ctx != nil && ctx.Done() != nil {
		watcher := make(chan struct{})
		defer close(watcher)
		go func() {
			select {
			case <-ctx.Done():
				for _, at := range p.attempts {
					at.stop.Store(true)
				}
			case <-watcher:
			}
		}()
	}

	if workers <= 1 {
		// Sequential engine: attempts run in declaration order on this
		// goroutine. Cancellation still applies — an acceptable repair
		// marks every later same-pass template and every later pass, so
		// those attempts return immediately, reproducing the sequential
		// early exit.
		for _, at := range p.attempts {
			p.runAttempt(at, 0)
		}
	} else {
		// A channel of worker ids doubles as the concurrency semaphore
		// and records which worker ran each attempt (per-worker timing).
		ids := make(chan int, workers)
		for i := 0; i < workers; i++ {
			ids <- i
		}
		var wg sync.WaitGroup
		for _, at := range p.attempts {
			wg.Add(1)
			go func(at *attempt) {
				defer wg.Done()
				id := <-ids
				defer func() { ids <- id }()
				p.runAttempt(at, id)
			}(at)
		}
		wg.Wait()
	}

	for _, at := range p.attempts {
		res.PerTemplate = append(res.PerTemplate, at.tres)
		res.SAT.Add(at.tres.Stats.SAT)
		res.Certify.Add(at.tres.Stats.Certify)
	}

	// Deterministic selection, mirroring the sequential engine: within a
	// pass an acceptable repair beats any fallback; across passes the
	// earliest pass with any repair wins (the sequential engine breaks
	// before the unpruned pass once a fallback exists).
	for pi := range passes {
		var acc, fb *attempt
		for _, at := range p.attempts {
			if at.pass != pi || at.candidate == nil {
				continue
			}
			if at.candidate.Changes <= opts.MaxAcceptableChanges {
				if acc == nil {
					acc = at
				}
			} else if fb == nil || at.candidate.Changes < fb.candidate.Changes {
				fb = at
			}
		}
		pick := acc
		if pick == nil {
			pick = fb
		}
		if pick != nil {
			c := pick.candidate
			res.Status = StatusRepaired
			res.Repaired = c.Repaired
			res.Changes = c.Changes
			res.Template = c.Template
			res.ChangeDescs = c.ChangeDescs
			res.Window = c.Window
			return
		}
	}
	// No repair. A cancelled context, an expired deadline, or any attempt
	// that was cut short (solver deadline, cooperative cancellation) all
	// mean the search did not run to completion: report StatusTimeout,
	// with the partial SAT/certify statistics already aggregated above.
	// (Sibling cancellation cannot reach here — it only happens after a
	// candidate was stored, which returns StatusRepaired.)
	if ctx != nil && ctx.Err() != nil {
		res.Status = StatusTimeout
		res.Reason = cancelReason(ctx.Err())
		return
	}
	if time.Now().After(deadline) {
		res.Status = StatusTimeout
		res.Reason = "timeout"
		return
	}
	for _, at := range p.attempts {
		if errors.Is(at.tres.Err, ErrTimeout) || errors.Is(at.tres.Err, ErrCancelled) {
			res.Status = StatusTimeout
			res.Reason = "timeout"
			return
		}
	}
	res.Status = StatusCannotRepair
	res.Reason = "no template found a repair"
}

// runAttempt executes one attempt on its own smt.Context and synthesis
// variable namespace. On success it stores a verified candidate and
// cancels the siblings the sequential engine would never have run.
func (p *portfolio) runAttempt(at *attempt, worker int) {
	at.tres = TemplateResult{Template: at.tmpl.Name(), Localized: at.loc != nil, Worker: worker}
	start := time.Now()
	// The attempt span is keyed by (pass, template) — stable across
	// worker counts and scheduling — and carries the worker lane. Worker
	// busy time accumulates on a per-worker counter so the registry shows
	// the portfolio's load balance without any tracing enabled.
	asc := p.obs.StartKeyed("attempt", fmt.Sprintf("p%d:%s", at.pass, at.tmpl.Name()))
	asc.Span.SetWorker(worker)
	defer func() {
		at.tres.Duration = time.Since(start)
		if sp := asc.Span; sp != nil {
			sp.SetStr("template", at.tmpl.Name())
			sp.SetInt("pass", int64(at.pass))
			sp.SetInt("sites", int64(at.tres.Sites))
			sp.SetBool("found", at.tres.Found)
			sp.SetBool("cancelled", at.tres.Cancelled)
		}
		asc.End()
		p.obs.Metrics.Add(fmt.Sprintf("portfolio.worker.%d.busy_us", worker),
			at.tres.Duration.Microseconds())
		p.obs.Metrics.Add("portfolio.attempts", 1)
	}()

	if at.stop.Load() {
		at.tres.Cancelled = true
		at.tres.Err = ErrCancelled
		return
	}
	if time.Now().After(p.deadline) {
		at.tres.Err = ErrTimeout
		return
	}

	ctx := smt.NewContext()
	counter := 0
	vars := NewVarTable(&counter)
	env := &Env{Info: p.info, Lib: p.opts.Lib, Frozen: p.opts.frozenSet(), Loc: at.loc}
	ispan := asc.Tracer.Start(asc.Span, "instrument")
	instr, err := at.tmpl.Instrument(p.fixed, env, vars)
	if ispan != nil {
		ispan.SetInt("sites", int64(len(vars.Phis)))
		ispan.End()
	}
	if err != nil {
		at.tres.Err = err
		return
	}
	at.tres.Sites = len(vars.Phis)
	if vars.Empty() {
		return
	}
	espan := asc.Tracer.Start(asc.Span, "elaborate")
	isys, _, err := synth.Elaborate(ctx, instr, synth.Options{Lib: p.opts.Lib})
	espan.End()
	if err != nil {
		at.tres.Err = err
		return
	}
	sopts := DefaultSynthOptions()
	sopts.Policy = p.opts.Policy
	sopts.Seed = p.opts.Seed
	sopts.Deadline = p.deadline
	sopts.NoMinimize = p.opts.NoMinimize
	sopts.Interrupt = &at.stop
	sopts.Certify = p.opts.Certify
	sopts.NoAbsint = p.opts.NoAbsint
	sopts.Obs = asc
	synthz := NewSynthesizer(ctx, isys, vars, p.ctr, p.init, sopts)
	var sol *Solution
	if p.opts.Basic {
		sol, err = synthz.Basic()
	} else {
		sol, err = synthz.Windowed(p.baseRun.FirstFailure)
	}
	at.tres.Stats = synthz.Stats
	if err != nil {
		at.tres.Err = err
		at.tres.Cancelled = errors.Is(err, ErrCancelled)
		return
	}
	if sol == nil {
		return
	}
	at.tres.Found = true
	at.tres.Changes = sol.Changes

	repaired, rerr := Resolve(instr, sol.Assign)
	if rerr != nil {
		return
	}
	// Final guard: the patched source must re-elaborate and pass.
	if !verifyRepaired(repaired, p.ctr, p.init, p.opts.Lib) {
		return
	}
	at.candidate = &Result{
		Status:      StatusRepaired,
		Repaired:    repaired,
		Changes:     sol.Changes,
		Template:    at.tmpl.Name(),
		ChangeDescs: vars.EnabledDescs(sol.Assign),
		Window:      synthz.Stats.FinalWindow,
	}
	p.cancelSiblings(at)
}

// cancelSiblings stops every attempt whose result provably cannot win
// the selection once at's candidate exists. Attempts that might still
// beat it — earlier templates of the same pass, or any template of an
// earlier pass — keep running.
func (p *portfolio) cancelSiblings(at *attempt) {
	acceptable := at.candidate.Changes <= p.opts.MaxAcceptableChanges
	for _, other := range p.attempts {
		if other == at {
			continue
		}
		if other.pass > at.pass ||
			(acceptable && other.pass == at.pass && other.tmplIdx > at.tmplIdx) {
			other.stop.Store(true)
		}
	}
}
