// Golden reference for the CI observability smoke test: the Figure 1a
// counter with a correct synchronous reset. tracegen records the trace
// CSV from this design; rtlrepair repairs counter_buggy.v against it.
module first_counter(input clock, input reset, input enable,
                     output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset == 1'b1) begin
    count <= 4'b0000;
    overflow <= 1'b0;
  end else if (enable == 1'b1) begin
    count <= count + 1;
  end
  if (count == 4'b1111) begin
    overflow <= 1'b1;
  end
end
endmodule
