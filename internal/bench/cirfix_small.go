package bench

import (
	"rtlrepair/internal/bv"
	"rtlrepair/internal/trace"
)

// ---------------------------------------------------------------- decoder

const decoderGT = `
module decoder_3_to_8(input en, input a, input b, input c, output [7:0] y);
  assign y = ({en, a, b, c} == 4'b1000) ? 8'b1111_1110 :
             ({en, a, b, c} == 4'b1001) ? 8'b1111_1101 :
             ({en, a, b, c} == 4'b1010) ? 8'b1111_1011 :
             ({en, a, b, c} == 4'b1011) ? 8'b1111_0111 :
             ({en, a, b, c} == 4'b1100) ? 8'b1110_1111 :
             ({en, a, b, c} == 4'b1101) ? 8'b1101_1111 :
             ({en, a, b, c} == 4'b1110) ? 8'b1011_1111 :
             ({en, a, b, c} == 4'b1111) ? 8'b0111_1111 :
                                          8'b1111_1111;
endmodule`

func decoderIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "en", Width: 1}, {Name: "a", Width: 1}, {Name: "b", Width: 1}, {Name: "c", Width: 1}},
		[]trace.Signal{{Name: "y", Width: 8}}
}

// decoderStim covers most but not all input combinations (28 cycles),
// like the original testbench; combination 1101 is never driven.
func decoderStim() [][]bv.XBV {
	s := newStim(1, 1, 1, 1, 1)
	combos := []uint64{
		0b1000, 0b1001, 0b1010, 0b1011, 0b1100, 0b1110, 0b1111,
		0b0000, 0b0001, 0b0101, 0b0111,
		0b1000, 0b1010, 0b1111, 0b1001, 0b1011, 0b1100, 0b1110,
		0b0010, 0b0100, 0b0110, 0b0011,
		0b1000, 0b1111, 0b1010, 0b1011, 0b1001, 0b1100,
	}
	for _, cm := range combos {
		s.row(cm>>3&1, cm>>2&1, cm>>1&1, cm&1)
	}
	return s.rows
}

// decoderExtStim drives every combination twice (the "extended"
// testbench of §6.2).
func decoderExtStim() [][]bv.XBV {
	s := newStim(1, 1, 1, 1, 1)
	for round := 0; round < 2; round++ {
		for cm := uint64(0); cm < 16; cm++ {
			s.row(cm>>3&1, cm>>2&1, cm>>1&1, cm&1)
		}
	}
	return s.rows
}

func decoderBenchmarks() []*Benchmark {
	ins, outs := decoderIO()
	// w1: two separate numeric errors on exercised paths (Figure 8).
	w1 := mustReplace(decoderGT, "4'b1010) ? 8'b1111_1011", "4'b1000) ? 8'b1111_1011", 1)
	w1 = mustReplace(w1, "8'b1111_1111;", "8'b0111_1111;", 1)
	// w2: incorrect assignments, one on a path the original testbench
	// never exercises (combination 1101).
	w2 := mustReplace(decoderGT, "8'b1101_1111", "8'b1111_1111", 1)
	w2 = mustReplace(w2, "8'b1011_1111", "8'b1011_1101", 1)
	return []*Benchmark{
		{
			Name: "decoder_w1", Project: "decoder 3-8", Defect: "Two separate numeric errors",
			GroundTruth: decoderGT, Buggy: w1, Inputs: ins, Outputs: outs,
			Stimulus: decoderStim, ExtStimulus: decoderExtStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "Replace Literals",
		},
		{
			Name: "decoder_w2", Project: "decoder 3-8", Defect: "Incorrect assignment",
			GroundTruth: decoderGT, Buggy: w2, Inputs: ins, Outputs: outs,
			Stimulus: decoderStim, ExtStimulus: decoderExtStim,
			Suite: "cirfix", PaperRTLRepair: "wrong", PaperCirFix: "none", PaperTemplate: "Replace Literals",
		},
	}
}

// ---------------------------------------------------------------- counter

const counterGT = `
module first_counter(input clock, input reset, input enable,
                     output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset == 1'b1) begin
    count <= 4'b0000;
    overflow <= 1'b0;
  end else if (enable == 1'b1) begin
    count <= count + 1;
  end
  if (count == 4'b1111) begin
    overflow <= 1'b1;
  end
end
endmodule`

func counterIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "reset", Width: 1}, {Name: "enable", Width: 1}},
		[]trace.Signal{{Name: "count", Width: 4}, {Name: "overflow", Width: 1}}
}

// counterStim: reset, count with holds, reset again (27 cycles).
func counterStim() [][]bv.XBV {
	s := newStim(2, 1, 1)
	s.row(1, 0).row(1, 0)
	s.repeat(6, 0, 1)
	s.repeat(2, 0, 0)
	s.repeat(5, 0, 1)
	s.row(1, 0)
	s.repeat(10, 0, 1)
	return s.rows
}

func counterBenchmarks() []*Benchmark {
	ins, outs := counterIO()
	w1 := mustReplace(counterGT, "always @(posedge clock)", "always @(clock)", 1)
	k1 := mustReplace(counterGT, "    count <= 4'b0000;\n", "", 1)
	w2 := mustReplace(counterGT, "count + 1", "count + 2", 1)
	return []*Benchmark{
		{
			Name: "counter_w1", Project: "counter", Defect: "Incorrect sensitivity list",
			GroundTruth: counterGT, Buggy: w1, Inputs: ins, Outputs: outs, Stimulus: counterStim,
			Suite: "cirfix", PaperRTLRepair: "none", PaperCirFix: "ok",
		},
		{
			Name: "counter_k1", Project: "counter", Defect: "Incorrect reset",
			GroundTruth: counterGT, Buggy: k1, Inputs: ins, Outputs: outs, Stimulus: counterStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "ok", PaperTemplate: "Conditional Overwrite",
		},
		{
			Name: "counter_w2", Project: "counter", Defect: "Incorrect incremental of counter",
			GroundTruth: counterGT, Buggy: w2, Inputs: ins, Outputs: outs, Stimulus: counterStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "ok", PaperTemplate: "Conditional Overwrite",
		},
	}
}

// ---------------------------------------------------------------- flip flop

const flopGT = `
module tff(input clk, input rstn, input t, output reg q);
always @(posedge clk) begin
  if (!rstn) begin
    q <= 1'b0;
  end else begin
    if (t) q <= ~q;
    else q <= q;
  end
end
endmodule`

func flopIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "rstn", Width: 1}, {Name: "t", Width: 1}},
		[]trace.Signal{{Name: "q", Width: 1}}
}

func flopStim() [][]bv.XBV {
	s := newStim(3, 1, 1)
	s.row(0, 0).row(0, 0)
	s.row(1, 1).row(1, 0).row(1, 1).row(1, 1).row(1, 0)
	s.row(0, 1).row(1, 1).row(1, 0).row(1, 1)
	return s.rows
}

func flopBenchmarks() []*Benchmark {
	ins, outs := flopIO()
	w1 := mustReplace(flopGT, "if (!rstn) begin", "if (rstn) begin", 1)
	w2 := mustReplace(flopGT, "if (t) q <= ~q;\n    else q <= q;", "if (t) q <= q;\n    else q <= ~q;", 1)
	return []*Benchmark{
		{
			Name: "flop_w1", Project: "flip flop", Defect: "Incorrect conditional",
			GroundTruth: flopGT, Buggy: w1, Inputs: ins, Outputs: outs, Stimulus: flopStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "ok", PaperTemplate: "Add Guard",
		},
		{
			Name: "flop_w2", Project: "flip flop", Defect: "Branches of if-statement swapped",
			GroundTruth: flopGT, Buggy: w2, Inputs: ins, Outputs: outs, Stimulus: flopStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "ok", PaperTemplate: "Add Guard",
		},
	}
}

// ---------------------------------------------------------------- fsm full

const fsmGT = `
module fsm_full(input clock, input reset, input req_0, input req_1,
                output reg gnt_0, output reg gnt_1);
localparam IDLE = 2'b00;
localparam GNT0 = 2'b01;
localparam GNT1 = 2'b10;
reg [1:0] state;
reg [1:0] next_state;
always @(posedge clock) begin
  if (reset) state <= IDLE;
  else state <= next_state;
end
always @(posedge clock) begin
  if (reset) begin
    gnt_0 <= 1'b0;
    gnt_1 <= 1'b0;
  end else begin
    gnt_0 <= (state == GNT0);
    gnt_1 <= (state == GNT1);
  end
end
always @(*) begin
  case (state)
    IDLE: begin
      if (req_0) next_state = GNT0;
      else if (req_1) next_state = GNT1;
      else next_state = IDLE;
    end
    GNT0: begin
      if (!req_0) next_state = IDLE;
      else next_state = GNT0;
    end
    GNT1: begin
      if (!req_1) next_state = IDLE;
      else next_state = GNT1;
    end
    default: next_state = IDLE;
  endcase
end
endmodule`

func fsmIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "reset", Width: 1}, {Name: "req_0", Width: 1}, {Name: "req_1", Width: 1}},
		[]trace.Signal{{Name: "gnt_0", Width: 1}, {Name: "gnt_1", Width: 1}}
}

// fsmStim: 37 cycles exercising grants, holds and hand-overs.
func fsmStim() [][]bv.XBV {
	s := newStim(4, 1, 1, 1)
	s.row(1, 0, 0).row(1, 0, 0)
	s.row(0, 1, 0).repeat(3, 0, 1, 0) // grant 0, hold
	s.row(0, 0, 0)                    // release
	s.row(0, 0, 1).repeat(3, 0, 0, 1) // grant 1, hold
	s.row(0, 0, 0)
	s.row(0, 1, 1).repeat(2, 0, 1, 1) // both: req_0 wins
	s.row(0, 0, 1).repeat(2, 0, 0, 1) // hand over to 1
	s.row(0, 0, 0)
	s.row(1, 1, 1) // reset overrides
	s.row(0, 0, 1).repeat(2, 0, 0, 1)
	s.row(0, 0, 0)
	s.repeat(4, 0, 1, 0)
	s.row(0, 0, 0)
	s.repeat(8, 0, 0, 0)
	return s.rows
}

func fsmBenchmarks() []*Benchmark {
	ins, outs := fsmIO()
	// w1: incorrect case statement — the GNT0 arm tests the wrong state.
	w1 := mustReplace(fsmGT, "    GNT0: begin\n      if (!req_0) next_state = IDLE;",
		"    GNT1: begin\n      if (!req_0) next_state = IDLE;", 1)
	// s2: blocking assignments in the sequential block and non-blocking
	// in the combinational block.
	s2 := mustReplace(fsmGT, "state <= IDLE;\n  else state <= next_state;",
		"state = IDLE;\n  else state = next_state;", 1)
	s2 = mustReplace(s2, "next_state = GNT0;\n      else if (req_1) next_state = GNT1;",
		"next_state <= GNT0;\n      else if (req_1) next_state <= GNT1;", 1)
	// w2: assignment to next state and default omitted.
	w2 := mustReplace(fsmGT, "      else next_state = IDLE;\n    end\n    GNT0:",
		"    end\n    GNT0:", 1)
	w2 = mustReplace(w2, "    default: next_state = IDLE;\n", "", 1)
	// s1: assignment to next state omitted + incorrect sensitivity list.
	s1 := mustReplace(fsmGT, "always @(*) begin\n  case (state)", "always @(state) begin\n  case (state)", 1)
	s1 = mustReplace(s1, "if (!req_1) next_state = IDLE;\n      else next_state = GNT1;",
		"if (req_1) next_state = GNT1;", 1)
	return []*Benchmark{
		{
			Name: "fsm_w1", Project: "fsm full", Defect: "Incorrect case statement",
			GroundTruth: fsmGT, Buggy: w1, Inputs: ins, Outputs: outs, Stimulus: fsmStim,
			Suite: "cirfix", PaperRTLRepair: "none", PaperCirFix: "none",
		},
		{
			Name: "fsm_s2", Project: "fsm full", Defect: "Incorrectly blocking assignments",
			GroundTruth: fsmGT, Buggy: s2, Inputs: ins, Outputs: outs, Stimulus: fsmStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "preprocessing",
		},
		{
			Name: "fsm_w2", Project: "fsm full", Defect: "Assignment to next state and default in case statement omitted",
			GroundTruth: fsmGT, Buggy: w2, Inputs: ins, Outputs: outs, Stimulus: fsmStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "preprocessing",
		},
		{
			Name: "fsm_s1", Project: "fsm full", Defect: "Assignment to next state omitted, incorrect sensitivity list",
			GroundTruth: fsmGT, Buggy: s1, Inputs: ins, Outputs: outs, Stimulus: fsmStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "preprocessing",
		},
	}
}

// ---------------------------------------------------------------- lshift reg

// shiftGT chains individual stage registers (like the original's chained
// flop instances) so that blocking assignments collapse the pipeline.
const shiftGT = `
module lshift_reg(input clk, input rstn, input din, output [7:0] out);
reg q0, q1, q2, q3, q4, q5, q6, q7;
always @(posedge clk) begin
  if (!rstn) begin
    q0 <= 1'b0; q1 <= 1'b0; q2 <= 1'b0; q3 <= 1'b0;
    q4 <= 1'b0; q5 <= 1'b0; q6 <= 1'b0; q7 <= 1'b0;
  end else begin
    q0 <= din;
    q1 <= q0;
    q2 <= q1;
    q3 <= q2;
    q4 <= q3;
    q5 <= q4;
    q6 <= q5;
    q7 <= q6;
  end
end
assign out = {q7, q6, q5, q4, q3, q2, q1, q0};
endmodule`

func shiftIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "rstn", Width: 1}, {Name: "din", Width: 1}},
		[]trace.Signal{{Name: "out", Width: 8}}
}

func shiftStim() [][]bv.XBV {
	s := newStim(5, 1, 1)
	s.row(0, 0).row(0, 0)
	bits := []uint64{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range bits {
		s.row(1, b)
	}
	s.row(0, 1).row(0, 1)
	for _, b := range bits[:11] {
		s.row(1, b)
	}
	return s.rows
}

func shiftBenchmarks() []*Benchmark {
	ins, outs := shiftIO()
	// w1: blocking assignments collapse the shift chain.
	w1 := mustReplace(shiftGT, "    q0 <= din;\n    q1 <= q0;\n    q2 <= q1;\n    q3 <= q2;",
		"    q0 = din;\n    q1 = q0;\n    q2 = q1;\n    q3 = q2;", 1)
	w2 := mustReplace(shiftGT, "if (!rstn) begin", "if (rstn) begin", 1)
	// k1: a data signal in the edge sensitivity list — invisible to
	// synthesis (the circuit is identical) but visible to event-driven
	// simulation, which is why the tool wrongly reports "no repair
	// needed" (§6.2).
	k1 := mustReplace(shiftGT, "always @(posedge clk) begin", "always @(posedge clk or din) begin", 1)
	return []*Benchmark{
		{
			Name: "shift_w1", Project: "lshift reg", Defect: "Incorrect blocking assignment",
			GroundTruth: shiftGT, Buggy: w1, Inputs: ins, Outputs: outs, Stimulus: shiftStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "preprocessing",
		},
		{
			Name: "shift_w2", Project: "lshift reg", Defect: "Incorrect conditional",
			GroundTruth: shiftGT, Buggy: w2, Inputs: ins, Outputs: outs, Stimulus: shiftStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "ok", PaperTemplate: "Add Guard",
		},
		{
			Name: "shift_k1", Project: "lshift reg", Defect: "Incorrect sensitivity list",
			GroundTruth: shiftGT, Buggy: k1, Inputs: ins, Outputs: outs, Stimulus: shiftStim,
			Suite: "cirfix", PaperRTLRepair: "wrong", PaperCirFix: "ok",
		},
	}
}

// ---------------------------------------------------------------- mux 4:1

const muxGT = `
module mux_4_1(input [1:0] sel, input [3:0] a, input [3:0] b,
               input [3:0] c, input [3:0] d, output [3:0] out);
assign out = (sel == 2'b00) ? a :
             (sel == 2'b01) ? b :
             (sel == 2'b10) ? c : d;
endmodule`

func muxIO() ([]trace.Signal, []trace.Signal) {
	return []trace.Signal{{Name: "sel", Width: 2}, {Name: "a", Width: 4}, {Name: "b", Width: 4},
			{Name: "c", Width: 4}, {Name: "d", Width: 4}},
		[]trace.Signal{{Name: "out", Width: 4}}
}

func muxStim() [][]bv.XBV {
	s := newStim(6, 2, 4, 4, 4, 4)
	// 151 cycles of pseudo-random selections with distinct data values.
	for i := 0; i < 151; i++ {
		s.row(uint64(i)%4, uint64(1+i*3)%16, uint64(2+i*5)%16, uint64(3+i*7)%16, uint64(4+i*11)%16)
	}
	return s.rows
}

func muxBenchmarks() []*Benchmark {
	ins, outs := muxIO()
	k1 := mustReplace(muxGT, "output [3:0] out", "output out", 1)
	w2 := mustReplace(muxGT, "(sel == 2'b10) ? c : d", "(sel == 2'h10) ? c : d", 1)
	w1 := mustReplace(muxGT, "(sel == 2'b00) ? a", "(sel == 2'b01) ? a", 1)
	w1 = mustReplace(w1, "(sel == 2'b01) ? b", "(sel == 2'b11) ? b", 1)
	w1 = mustReplace(w1, "(sel == 2'b10) ? c", "(sel == 2'b00) ? c", 1)
	return []*Benchmark{
		{
			Name: "mux_k1", Project: "mux 4 1", Defect: "1 bit instead of 4 bit output",
			GroundTruth: muxGT, Buggy: k1, Inputs: ins, Outputs: outs, Stimulus: muxStim,
			Suite: "cirfix", PaperRTLRepair: "none", PaperCirFix: "none",
		},
		{
			Name: "mux_w2", Project: "mux 4 1", Defect: "Hex instead of binary constants",
			GroundTruth: muxGT, Buggy: w2, Inputs: ins, Outputs: outs, Stimulus: muxStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "Replace Literals",
		},
		{
			Name: "mux_w1", Project: "mux 4 1", Defect: "Three separate numeric errors",
			GroundTruth: muxGT, Buggy: w1, Inputs: ins, Outputs: outs, Stimulus: muxStim,
			Suite: "cirfix", PaperRTLRepair: "ok", PaperCirFix: "wrong", PaperTemplate: "Replace Literals",
		},
	}
}
