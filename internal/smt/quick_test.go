package smt

import (
	"testing"
	"testing/quick"

	"rtlrepair/internal/bv"
)

// Property: term-level constant folding agrees with bit-vector
// arithmetic for every binary operator.
func TestQuickFoldingMatchesBV(t *testing.T) {
	type binCase struct {
		name string
		term func(*Context, *Term, *Term) *Term
		val  func(bv.BV, bv.BV) bv.BV
	}
	cases := []binCase{
		{"add", (*Context).Add, bv.BV.Add},
		{"sub", (*Context).Sub, bv.BV.Sub},
		{"mul", (*Context).Mul, bv.BV.Mul},
		{"and", (*Context).And, bv.BV.And},
		{"or", (*Context).Or, bv.BV.Or},
		{"xor", (*Context).Xor, bv.BV.Xor},
		{"udiv", (*Context).Udiv, bv.BV.Udiv},
		{"urem", (*Context).Urem, bv.BV.Urem},
	}
	for _, c := range cases {
		c := c
		f := func(a, b uint64) bool {
			ctx := NewContext()
			x, y := ctx.ConstU(32, a), ctx.ConstU(32, b)
			folded := c.term(ctx, x, y)
			want := c.val(bv.New(32, a), bv.New(32, b))
			return folded.IsConst() && folded.Val.Eq(want)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// Property: substitution with the identity map returns the same term
// (hash-consing pointer equality).
func TestQuickSubstituteIdentity(t *testing.T) {
	f := func(a, b uint64) bool {
		ctx := NewContext()
		x := ctx.Var("x", 16)
		y := ctx.Var("y", 16)
		e := ctx.Ite(ctx.Ult(x, y), ctx.Add(x, ctx.ConstU(16, a)), ctx.Xor(y, ctx.ConstU(16, b)))
		return ctx.Substitute(e, nil) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval of zext(x)+zext(y) at double width never wraps.
func TestQuickWideAddNoOverflow(t *testing.T) {
	f := func(a, b uint32) bool {
		ctx := NewContext()
		x := ctx.ZeroExt(ctx.ConstU(32, uint64(a)), 64)
		y := ctx.ZeroExt(ctx.ConstU(32, uint64(b)), 64)
		sum := ctx.Add(x, y)
		return sum.IsConst() && sum.Val.Uint64() == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan holds for the term constructors under evaluation.
func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b uint16) bool {
		ctx := NewContext()
		x, y := ctx.ConstU(16, uint64(a)), ctx.ConstU(16, uint64(b))
		lhs := ctx.Not(ctx.And(x, y))
		rhs := ctx.Or(ctx.Not(x), ctx.Not(y))
		return lhs.IsConst() && rhs.IsConst() && lhs.Val.Eq(rhs.Val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
