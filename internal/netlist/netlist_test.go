package netlist

import (
	"strings"
	"testing"

	"rtlrepair/internal/sim"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/tsys"
	"rtlrepair/internal/verilog"
)

func buildFrom(t *testing.T, src string) (*tsys.System, *Netlist) {
	t.Helper()
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := synth.Elaborate(smt.NewContext(), m, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, nl
}

const counterSrc = `
module c(input clock, input reset, input enable,
         output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset) begin count <= 4'b0; overflow <= 1'b0; end
  else if (enable) count <= count + 1;
  if (count == 4'b1111) overflow <= 1'b1;
end
endmodule`

func TestGateSimMatchesWordSim(t *testing.T) {
	_, nl := buildFrom(t, counterSrc)
	g := NewGateSim(nl, PolicyZero, 0)
	in := func(r, e uint64) map[string]bv.XBV {
		return map[string]bv.XBV{"reset": bv.KU(1, r), "enable": bv.KU(1, e)}
	}
	g.Step(in(1, 0))
	for i := 0; i < 5; i++ {
		g.Step(in(0, 1))
	}
	outs := g.Step(in(0, 0))
	if outs["count"].Val.Uint64() != 5 {
		t.Fatalf("count = %v, want 5", outs["count"])
	}
}

func TestGateCountReasonable(t *testing.T) {
	_, nl := buildFrom(t, counterSrc)
	if nl.NumGates() == 0 || nl.NumGates() > 500 {
		t.Fatalf("gates = %d", nl.NumGates())
	}
}

func TestGateXPropagationWithoutReset(t *testing.T) {
	_, nl := buildFrom(t, counterSrc)
	g := NewGateSim(nl, PolicyKeepX, 0)
	outs := g.Step(map[string]bv.XBV{"reset": bv.KU(1, 0), "enable": bv.KU(1, 1)})
	if !outs["count"].HasUnknown() {
		t.Fatalf("count should be X before reset, got %v", outs["count"])
	}
	g.Step(map[string]bv.XBV{"reset": bv.KU(1, 1), "enable": bv.KU(1, 0)})
	outs = g.Step(map[string]bv.XBV{"reset": bv.KU(1, 0), "enable": bv.KU(1, 0)})
	if outs["count"].HasUnknown() || outs["count"].Val.Uint64() != 0 {
		t.Fatalf("count after reset = %v", outs["count"])
	}
}

func TestRunGateTrace(t *testing.T) {
	_, nl := buildFrom(t, counterSrc)
	ins := []trace.Signal{{Name: "reset", Width: 1}, {Name: "enable", Width: 1}}
	outs := []trace.Signal{{Name: "count", Width: 4}}
	tr := trace.New(ins, outs)
	tr.AddRow([]bv.XBV{bv.KU(1, 1), bv.KU(1, 0)}, []bv.XBV{bv.X(4)})
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 1)}, []bv.XBV{bv.KU(4, 0)})
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 1)}, []bv.XBV{bv.KU(4, 1)})
	if cyc, sig := RunGateTrace(nl, tr, PolicyZero, 0); cyc != -1 {
		t.Fatalf("trace failed at %d (%s)", cyc, sig)
	}
	// Break the expectation.
	tr.OutputRows[2][0] = bv.KU(4, 9)
	if cyc, _ := RunGateTrace(nl, tr, PolicyZero, 0); cyc != 2 {
		t.Fatalf("expected failure at 2, got %d", cyc)
	}
}

func TestDivByGates(t *testing.T) {
	_, nl := buildFrom(t, `
module d(input [7:0] a, b, output [7:0] q, r);
assign q = a / b;
assign r = a % b;
endmodule`)
	g := NewGateSim(nl, PolicyZero, 0)
	outs := g.Step(map[string]bv.XBV{"a": bv.KU(8, 200), "b": bv.KU(8, 7)})
	if outs["q"].Val.Uint64() != 28 || outs["r"].Val.Uint64() != 4 {
		t.Fatalf("q=%v r=%v", outs["q"], outs["r"])
	}
}

func TestWriteVerilog(t *testing.T) {
	_, nl := buildFrom(t, counterSrc)
	src := nl.WriteVerilog("gates")
	for _, want := range []string{"module gates", "always @(posedge clk)", "assign count"} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q in gate-level output", want)
		}
	}
}

func TestGateXPessimismVsWordMerge(t *testing.T) {
	// y = sel ? a : a. The word-level simulator merges to a; gate level
	// with an X select keeps X (mux reconvergence pessimism). Using two
	// separate input words prevents the AIG structural hash from
	// collapsing the mux.
	src := `
module p(input sel, input a, input b, output y);
assign y = sel ? a : b;
endmodule`
	_, nl := buildFrom(t, src)
	g := NewGateSim(nl, PolicyKeepX, 0)
	outs := g.Step(map[string]bv.XBV{"sel": bv.X(1), "a": bv.KU(1, 1), "b": bv.KU(1, 1)})
	if !outs["y"].HasUnknown() {
		t.Fatalf("gate-level y = %v, want X (pessimism)", outs["y"])
	}
}

func TestBuildRejectsParams(t *testing.T) {
	ctx := smt.NewContext()
	phi := ctx.Var("phi", 1)
	sys := &tsys.System{Name: "p", Params: []*smt.Term{phi},
		Outputs: []tsys.Output{{Name: "y", Expr: phi}}}
	if _, err := Build(sys); err == nil {
		t.Fatal("expected error for unresolved synthesis parameters")
	}
}

// TestGateLevelVerilogRoundTrip closes the loop: the emitted gate-level
// Verilog must re-parse and re-elaborate in this framework's own
// frontend and behave exactly like the original word-level design —
// which is precisely what the paper's gate-level simulation check
// assumes about the synthesis output.
func TestGateLevelVerilogRoundTrip(t *testing.T) {
	sys, nl := buildFrom(t, counterSrc)
	src := nl.WriteVerilog("gates")
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatalf("gate-level Verilog does not parse: %v\n%s", err, src)
	}
	gsys, _, err := synth.Elaborate(smt.NewContext(), m, synth.Options{})
	if err != nil {
		t.Fatalf("gate-level Verilog does not elaborate: %v", err)
	}
	// Co-simulate from the zero state.
	a := newZeroedSim(sys)
	b := newZeroedSim(gsys)
	in := func(r, e uint64) map[string]bv.XBV {
		return map[string]bv.XBV{"reset": bv.KU(1, r), "enable": bv.KU(1, e)}
	}
	seq := [][2]uint64{{1, 0}, {0, 1}, {0, 1}, {0, 0}, {0, 1}, {1, 0}, {0, 1}}
	for i, s := range seq {
		oa := a.Step(in(s[0], s[1]))
		ob := b.Step(in(s[0], s[1]))
		for _, name := range []string{"count", "overflow"} {
			if !oa[name].SameAs(ob[name]) {
				t.Fatalf("cycle %d %s: word %v vs gates-as-verilog %v", i, name, oa[name], ob[name])
			}
		}
	}
}

func newZeroedSim(sys *tsys.System) *sim.CycleSim {
	s := sim.NewCycleSim(sys, sim.Zero, 0)
	return s
}
