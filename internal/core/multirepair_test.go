package core

import (
	"testing"

	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/verilog"
)

func TestRepairAllSamplesDistinctRepairs(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	cands := RepairAll(mustParse(t, buggyCounter), tr, repairOpts(), 4)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, c := range cands {
		src := verilog.Print(c.Repaired)
		if seen[src] {
			t.Fatal("duplicate candidate")
		}
		seen[src] = true
		// Every candidate must synthesize and pass the trace.
		sys, _, err := synth.Elaborate(smt.NewContext(), c.Repaired, synth.Options{})
		if err != nil {
			t.Fatalf("candidate does not synthesize: %v", err)
		}
		_ = sys
		if c.Changes <= 0 {
			t.Fatalf("candidate with %d changes", c.Changes)
		}
	}
	// Ordered by size.
	for i := 1; i < len(cands); i++ {
		if cands[i].Changes < cands[i-1].Changes {
			t.Fatal("candidates not ordered by change count")
		}
	}
}

func TestRepairAllEmptyForPassingDesign(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	cands := RepairAll(mustParse(t, goodCounter), tr, repairOpts(), 4)
	if len(cands) != 0 {
		t.Fatalf("got %d candidates for a passing design", len(cands))
	}
}
