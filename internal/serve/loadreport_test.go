package serve

import (
	"testing"
	"time"
)

func validLoadReport() *LoadReport {
	return &LoadReport{
		Version:     LoadReportVersion,
		Designs:     []string{"counter", "fsm_full"},
		Requests:    10,
		Concurrency: 4,
		DurationMS:  1234,
		Throughput:  8.1,
		Latency:     LatencyMS{P50: 10, P90: 20, P99: 30, Max: 40},
		QueueWait:   LatencyMS{P50: 1, P90: 2, P99: 3, Max: 4},
		Run:         LatencyMS{P50: 9, P90: 18, P99: 27, Max: 36},
		Statuses:    map[string]int{"repaired": 9},
		Errors:      1,
		Mismatches:  []string{},
		Resubmits:   8,
		ResubmitHit: 1,
		SSEEvents:   120,
		Serve:       map[string]int64{"serve.jobs.accepted": 2},
	}
}

func TestLoadReportValidate(t *testing.T) {
	if err := validLoadReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := map[string]func(*LoadReport){
		"version":          func(r *LoadReport) { r.Version = 2 },
		"no designs":       func(r *LoadReport) { r.Designs = nil },
		"empty design":     func(r *LoadReport) { r.Designs = []string{""} },
		"zero requests":    func(r *LoadReport) { r.Requests = 0 },
		"zero concurrency": func(r *LoadReport) { r.Concurrency = 0 },
		"negative p50":     func(r *LoadReport) { r.Latency.P50 = -1 },
		"non-monotone":     func(r *LoadReport) { r.QueueWait.P90 = 100 },
		"nil statuses":     func(r *LoadReport) { r.Statuses = nil },
		"count mismatch":   func(r *LoadReport) { r.Statuses["repaired"] = 3 },
		"nil mismatches":   func(r *LoadReport) { r.Mismatches = nil },
		"hit rate":         func(r *LoadReport) { r.ResubmitHit = 1.5 },
		"resubmits":        func(r *LoadReport) { r.Resubmits = 10 },
		"sse negative":     func(r *LoadReport) { r.SSEEvents = -1 },
		"nil counters":     func(r *LoadReport) { r.Serve = nil },
	}
	for name, mutate := range bad {
		r := validLoadReport()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: mutation accepted", name)
		}
	}
}

func TestParseLoadReportRoundTrip(t *testing.T) {
	data := []byte(`{"version":1,"designs":["d"],"requests":1,"concurrency":1,
		"duration_ms":5,"throughput_rps":1,"latency_ms":{"p50":1,"p90":1,"p99":1,"max":1},
		"queue_wait_ms":{"p50":0,"p90":0,"p99":0,"max":0},
		"run_ms":{"p50":1,"p90":1,"p99":1,"max":1},
		"statuses":{"repaired":1},"errors":0,"mismatches":[],"resubmissions":0,
		"resubmit_hit_rate":0,"sse_events":3,"serve_counters":{}}`)
	r, err := ParseLoadReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 1 || r.SSEEvents != 3 {
		t.Fatalf("parsed = %+v", r)
	}
	if _, err := ParseLoadReport([]byte(`{"version":1}`)); err == nil {
		t.Fatal("invalid report parsed")
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	lats := []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond}
	if got := Percentile(lats, 100); got != 10 {
		t.Fatalf("max = %v", got)
	}
	if got := Percentile(lats, 50); got != 1 {
		t.Fatalf("p50 = %v", got)
	}
}
