// Command rtlrepair repairs a buggy Verilog design against an I/O trace:
//
//	rtlrepair -design buggy.v -trace testbench.csv [-out repaired.v]
//
// The trace CSV is self-describing (header cells are name:width:dir, see
// internal/trace). The repaired design is written to -out (default
// stdout) together with a unified diff of the change.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtlrepair/internal/core"
	"rtlrepair/internal/eval"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

func main() {
	var (
		designPath = flag.String("design", "", "buggy Verilog file (required)")
		tracePath  = flag.String("trace", "", "I/O trace CSV (required)")
		outPath    = flag.String("out", "", "output file for the repaired design (default stdout)")
		timeout    = flag.Duration("timeout", 60*time.Second, "repair budget")
		seed       = flag.Int64("seed", 1, "seed for randomized unknown values")
		zeroInit   = flag.Bool("zero-init", false, "zero unknown values instead of randomizing (Verilator mode)")
		basic      = flag.Bool("basic", false, "disable adaptive windowing (basic synthesizer)")
		workers    = flag.Int("workers", 0, "portfolio workers (0 = one per CPU, 1 = sequential)")
		certify    = flag.Bool("certify", false, "self-certify every solver verdict (DRUP-check Unsat answers, re-evaluate Sat models)")
		noAbsint   = flag.Bool("no-absint", false, "disable the abstract-interpretation term simplifier")
		verbose    = flag.Bool("v", false, "print per-template progress")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *designPath == "" || *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	check(ocli.Start())

	src, err := os.ReadFile(*designPath)
	check(err)
	mods, err := verilog.Parse(string(src))
	check(err)
	top := mods[len(mods)-1]
	lib := map[string]*verilog.Module{}
	for _, m := range mods[:len(mods)-1] {
		lib[m.Name] = m
	}

	tf, err := os.Open(*tracePath)
	check(err)
	tr, err := trace.ReadCSV(tf)
	check(err)
	tf.Close()

	policy := sim.Randomize
	if *zeroInit {
		policy = sim.Zero
	}
	// SIGINT/SIGTERM cancel the repair cooperatively: the SAT searches
	// stop at their next poll and the partial statistics still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res := core.RepairCtx(obs.NewContext(ctx, ocli.Scope()), top, tr, core.Options{
		Policy:   policy,
		Seed:     *seed,
		Timeout:  *timeout,
		Basic:    *basic,
		Lib:      lib,
		Workers:  *workers,
		Certify:  *certify,
		NoAbsint: *noAbsint,
	})
	check(ocli.Finish())

	fmt.Fprintf(os.Stderr, "status:   %s (%.2fs)\n", res.Status, res.Duration.Seconds())
	if *verbose {
		for _, tr := range res.PerTemplate {
			state := "no repair"
			if tr.Found {
				state = fmt.Sprintf("%d changes", tr.Changes)
			}
			if tr.Err != nil {
				state = tr.Err.Error()
			}
			pass := "pruned"
			if !tr.Localized {
				pass = "full"
			}
			fmt.Fprintf(os.Stderr, "  %-22s %-7s w%d  %-12s %s\n",
				tr.Template, pass, tr.Worker, state, tr.Duration.Round(time.Millisecond))
			st := tr.Stats.SAT
			if st.Conflicts+st.Decisions+st.Propagations > 0 {
				fmt.Fprintf(os.Stderr, "    sat: %d vars %d clauses | %d conflicts %d decisions %d propagations %d restarts %d learned\n",
					st.Vars, st.Clauses, st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learned)
			}
			if *certify {
				ct := tr.Stats.Certify
				fmt.Fprintf(os.Stderr, "    certify: %d models validated, %d unsat proofs checked (%d steps, %d learned clauses RUP-verified) in %s\n",
					ct.ModelsValidated, ct.UnsatsCertified, ct.ProofSteps, ct.LearnedChecked, ct.CheckTime.Round(time.Millisecond))
			}
		}
		// The aggregates live on the Result (and the metrics registry)
		// whether or not -v is set; -v only controls printing them.
		st := res.SAT
		if st.Conflicts+st.Decisions+st.Propagations > 0 {
			fmt.Fprintf(os.Stderr, "  total sat: %d conflicts %d decisions %d propagations %d restarts %d learned\n",
				st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learned)
		}
		if ct := res.Certify; ct.ModelsValidated+ct.UnsatsCertified > 0 {
			fmt.Fprintf(os.Stderr, "  total certify: %d models validated, %d unsat proofs checked in %s\n",
				ct.ModelsValidated, ct.UnsatsCertified, ct.CheckTime.Round(time.Millisecond))
		}
		if ocli.Tracer != nil {
			fmt.Fprintln(os.Stderr, "  --- phase summary ---")
			ocli.Tracer.WriteSummary(os.Stderr)
		}
	}
	switch res.Status {
	case core.StatusRepaired, core.StatusPreprocessed:
		fmt.Fprintf(os.Stderr, "template: %s\nchanges:  %d\n", orPre(res.Template), res.Changes)
		for _, d := range res.ChangeDescs {
			fmt.Fprintf(os.Stderr, "  - %s\n", d)
		}
		out := verilog.Print(res.Repaired)
		if *outPath != "" {
			check(os.WriteFile(*outPath, []byte(out), 0o644))
		} else {
			fmt.Println(out)
		}
		fmt.Fprintf(os.Stderr, "--- diff buggy vs. repaired ---\n%s", eval.DiffLines(verilog.Print(top), out))
	case core.StatusNoRepairNeeded:
		fmt.Fprintln(os.Stderr, "the design already passes the trace; no repair necessary")
	default:
		fmt.Fprintf(os.Stderr, "reason:   %s\n", res.Reason)
		os.Exit(1)
	}
}

func orPre(t string) string {
	if t == "" {
		return "preprocessing"
	}
	return t
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlrepair:", err)
		os.Exit(1)
	}
}
