package sat

import "sync"

// Learned-clause exchange between solvers.
//
// An Exchange is a process-local pool of short learned clauses, grouped
// into namespaces ("rooms"). Solvers join a room with Join and then
// publish the short clauses they learn and import the ones published by
// other members. Two properties make this safe for the repair portfolio:
//
//   - Soundness never depends on the sender. Every imported clause is
//     re-verified by the receiver as a reverse-unit-propagation (RUP)
//     consequence of its own clause database before it is admitted, and
//     then logged as a learned step in the receiver's DRUP proof — so a
//     certified Unsat remains certified, imported clauses included, and a
//     buggy or mismatched sender can never corrupt a receiver (its
//     clauses are simply rejected).
//
//   - Determinism is a property of the namespace, not the scheduler. A
//     room shared only by solvers of one deterministic lineage (e.g. the
//     sequence of window solvers of a single portfolio attempt) has
//     schedule-independent content at each import point, because members
//     of a lineage run sequentially: whatever an earlier solver exported
//     is fully published before the next solver exists. Solvers also
//     import only at deterministic points of their own search (Solve
//     entry and restarts), never mid-propagation.
const (
	// MaxSharedLen caps the length of exported clauses. Because imports
	// are admitted by replaying the sender's derivation (importShared's
	// fixpoint), a cap that drops mid-derivation clauses breaks the
	// replay chain and collapses admission: on PHP(7,6), cap 8 admits 5
	// of 723 learned clauses, cap 32 admits all 723 and the receiver
	// finishes with zero conflicts. 32 keeps the chains intact on real
	// workloads while still excluding pathological mega-clauses.
	MaxSharedLen = 32
	// maxRoomClauses bounds a room's memory; once full, further exports
	// are counted as dropped rather than published.
	maxRoomClauses = 4096
)

// Exchange is a set of clause-sharing rooms keyed by namespace. The zero
// value is not usable; call NewExchange. All methods are safe for
// concurrent use.
type Exchange struct {
	mu    sync.Mutex
	rooms map[string]*shareRoom
}

type shareRoom struct {
	mu      sync.Mutex
	clauses []sharedClause // append-only; slices are immutable once stored
	members int
	dropped int64
}

type sharedClause struct {
	lits []Lit
	from int // member id of the publisher, to skip self-imports
}

// NewExchange returns an empty exchange.
func NewExchange() *Exchange {
	return &Exchange{rooms: map[string]*shareRoom{}}
}

// Join adds a member to the given namespace's room and returns its
// endpoint. Endpoints are not safe for concurrent use (each belongs to
// one solver), but distinct endpoints of one room may be used from
// different goroutines.
func (x *Exchange) Join(namespace string) *Endpoint {
	x.mu.Lock()
	r := x.rooms[namespace]
	if r == nil {
		r = &shareRoom{}
		x.rooms[namespace] = r
	}
	x.mu.Unlock()
	r.mu.Lock()
	id := r.members
	r.members++
	r.mu.Unlock()
	return &Endpoint{room: r, id: id}
}

// Dropped reports how many exports were discarded because a room was
// full, summed over all rooms.
func (x *Exchange) Dropped() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	var n int64
	for _, r := range x.rooms {
		r.mu.Lock()
		n += r.dropped
		r.mu.Unlock()
	}
	return n
}

// Endpoint is one solver's membership in a room.
type Endpoint struct {
	room   *shareRoom
	id     int
	cursor int // index of the first pool entry not yet drained
}

// publish copies lits into the room. It reports whether the clause was
// stored (false once the room is full).
func (e *Endpoint) publish(lits []Lit) bool {
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	r := e.room
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.clauses) >= maxRoomClauses {
		r.dropped++
		return false
	}
	r.clauses = append(r.clauses, sharedClause{lits: cp, from: e.id})
	return true
}

// pending reports whether drain would return anything, without advancing
// the cursor.
func (e *Endpoint) pending() bool {
	r := e.room
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := e.cursor; i < len(r.clauses); i++ {
		if r.clauses[i].from != e.id {
			return true
		}
	}
	return false
}

// drain returns every clause published since the last drain by members
// other than this one. The returned slices are shared and must not be
// mutated.
func (e *Endpoint) drain() [][]Lit {
	r := e.room
	r.mu.Lock()
	defer r.mu.Unlock()
	var out [][]Lit
	for ; e.cursor < len(r.clauses); e.cursor++ {
		sc := r.clauses[e.cursor]
		if sc.from == e.id {
			continue
		}
		out = append(out, sc.lits)
	}
	return out
}

// SetShare attaches the solver to a clause-sharing endpoint. Short
// learned clauses are exported to the room; foreign clauses are imported
// at Solve entry and at restarts, each one RUP-verified against this
// solver's own database (and logged in its proof) before admission. Must
// be set before Solve; pass nil to detach.
func (s *Solver) SetShare(e *Endpoint) { s.share = e }

type importVerdict int

const (
	importAdmitted importVerdict = iota
	importRejected               // unknown vars, redundant, tautology, or root-false
	importRetry                  // not (yet) a UP consequence; may become one
)

// importShared drains the room and tries to admit each foreign clause,
// iterating to a fixpoint: a clause that is not a unit-propagation
// consequence yet may become one once an earlier clause of the sender's
// derivation is admitted (each DRUP learn step is RUP given the steps
// before it, so replaying in publication order converges). Must be
// called at decision level 0. Stops early if an admitted unit reveals
// the formula unsat at the root.
func (s *Solver) importShared() {
	work := s.share.drain()
	for len(work) > 0 {
		var retry [][]Lit
		progress := false
		for _, lits := range work {
			switch s.importClause(lits) {
			case importAdmitted:
				s.sharedImported++
				progress = true
			case importRejected:
				s.sharedRejected++
			case importRetry:
				retry = append(retry, lits)
			}
			if !s.ok {
				return
			}
		}
		if !progress {
			s.sharedRejected += int64(len(retry))
			return
		}
		work = retry
	}
}

// importClause admits one foreign clause if (a) it only mentions
// variables this solver has allocated, (b) it is not already satisfied
// at the root, and (c) it passes a RUP check against this solver's
// database. Admitted clauses are logged as learned proof steps — the
// independent DRUP checker re-verifies exactly the same inference.
func (s *Solver) importClause(lits []Lit) importVerdict {
	for _, l := range lits {
		if v := l.Var(); v < 0 || v >= len(s.assigns) {
			return importRejected // foreign variable space
		}
	}
	// Normalize against the root assignment: drop false literals, skip
	// satisfied clauses and tautologies, dedup. The normalized clause is
	// what gets RUP-checked and logged; dropping root-false literals only
	// strengthens it, so RUP of the normalized form implies RUP of the
	// original.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return importRejected // already satisfied at root: no value
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l.Not() {
				return importRejected // tautology
			}
			if o == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		// Every literal is false at the root: the clause cannot be a
		// consequence of a consistent database.
		return importRejected
	}
	// RUP check: assume the negation on a pseudo decision level and
	// propagate. All literals in out are unassigned here (level 0, false
	// and true ones handled above), so every enqueue succeeds.
	s.trailLim = append(s.trailLim, len(s.trail))
	for _, l := range out {
		s.enqueue(l.Not(), nil)
	}
	rup := s.propagate() != nil
	s.backtrackTo(0)
	if !rup {
		return importRetry
	}
	if s.proof != nil {
		s.proof.add(StepLearn, out)
	}
	if len(out) == 1 {
		if !s.enqueue(out[0], nil) || s.propagate() != nil {
			s.ok = false
		}
		return importAdmitted
	}
	c := &clause{lits: out, learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return importAdmitted
}
