package netlist

import (
	"math/rand"
	"testing"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/tsys"
)

// randTerm mirrors the smt fuzz generator for gate-lowering validation.
func randTerm(c *smt.Context, rng *rand.Rand, vars []*smt.Term, depth int) *smt.Term {
	w := vars[0].Width
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(3) == 0 {
			return c.ConstU(w, rng.Uint64())
		}
		return vars[rng.Intn(len(vars))]
	}
	a := randTerm(c, rng, vars, depth-1)
	b := randTerm(c, rng, vars, depth-1)
	switch rng.Intn(15) {
	case 0:
		return c.Add(a, b)
	case 1:
		return c.Sub(a, b)
	case 2:
		return c.And(a, b)
	case 3:
		return c.Or(a, b)
	case 4:
		return c.Xor(a, b)
	case 5:
		return c.Not(a)
	case 6:
		return c.Neg(a)
	case 7:
		return c.Mul(a, b)
	case 8:
		return c.Ite(c.Eq(a, b), a, b)
	case 9:
		return c.Shl(a, b)
	case 10:
		return c.Lshr(a, b)
	case 11:
		return c.Ashr(a, b)
	case 12:
		return c.Ite(c.Ult(a, b), a, b)
	case 13:
		return c.Udiv(a, b)
	default:
		return c.Urem(a, b)
	}
}

// TestGateLoweringMatchesEval: lowering a random term to gates and
// simulating must match the reference term evaluator bit for bit.
func TestGateLoweringMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 150; iter++ {
		c := smt.NewContext()
		w := 1 + rng.Intn(9)
		vars := []*smt.Term{c.Var("a", w), c.Var("b", w)}
		term := randTerm(c, rng, vars, 3)
		sys := &tsys.System{
			Name:    "fuzz",
			Inputs:  vars,
			Outputs: []tsys.Output{{Name: "y", Expr: term}},
		}
		nl, err := Build(sys)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		g := NewGateSim(nl, PolicyZero, 0)
		for trial := 0; trial < 8; trial++ {
			env := map[*smt.Term]bv.BV{
				vars[0]: bv.New(w, rng.Uint64()),
				vars[1]: bv.New(w, rng.Uint64()),
			}
			want := smt.Eval(term, func(v *smt.Term) bv.BV { return env[v] })
			outs := g.Step(map[string]bv.XBV{
				"a": bv.K(env[vars[0]]),
				"b": bv.K(env[vars[1]]),
			})
			got := outs["y"]
			if !got.IsFullyKnown() || !got.Val.Eq(want) {
				t.Fatalf("iter %d trial %d: gates %v != eval %v for %v (a=%v b=%v)",
					iter, trial, got, want, term, env[vars[0]], env[vars[1]])
			}
		}
	}
}
