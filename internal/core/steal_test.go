package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealSchedulerClaimsEveryAttemptOnce hammers the scheduler with
// many workers under -race: every attempt index must be handed out
// exactly once, and next must return ok=false exactly once per worker
// after the pool drains.
func TestStealSchedulerClaimsEveryAttemptOnce(t *testing.T) {
	const attempts, workers = 200, 8
	s := newStealScheduler(attempts, workers, workers)
	var mu sync.Mutex
	claimed := map[int]int{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, _, ok := s.next(w)
				if !ok {
					return
				}
				mu.Lock()
				claimed[idx]++
				mu.Unlock()
				s.finish()
			}
		}(w)
	}
	wg.Wait()
	if len(claimed) != attempts {
		t.Fatalf("claimed %d distinct attempts, want %d", len(claimed), attempts)
	}
	for idx, n := range claimed {
		if n != 1 {
			t.Fatalf("attempt %d claimed %d times", idx, n)
		}
	}
}

// TestStealSchedulerThrottleNeverExceedsCapacity checks the speculation
// throttle: with capacity c, at most c attempts may be running at once,
// no matter how many workers contend.
func TestStealSchedulerThrottleNeverExceedsCapacity(t *testing.T) {
	const attempts, workers, capacity = 64, 8, 2
	s := newStealScheduler(attempts, workers, capacity)
	var running, maxRunning atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				_, _, ok := s.next(w)
				if !ok {
					return
				}
				n := running.Add(1)
				for {
					m := maxRunning.Load()
					if n <= m || maxRunning.CompareAndSwap(m, n) {
						break
					}
				}
				running.Add(-1)
				s.finish()
			}
		}(w)
	}
	wg.Wait()
	if m := maxRunning.Load(); m > capacity {
		t.Fatalf("observed %d attempts running at once, capacity %d", m, capacity)
	}
}

// TestStealSchedulerStrictClaimsInPriorityOrder: when capacity is 1 the
// scheduler must hand out attempts in global declaration order — the
// sequential engine's order — regardless of which worker asks or which
// deque the attempt was seeded onto.
func TestStealSchedulerStrictClaimsInPriorityOrder(t *testing.T) {
	const attempts, workers = 40, 4
	s := newStealScheduler(attempts, workers, 1)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, _, ok := s.next(w)
				if !ok {
					return
				}
				mu.Lock()
				order = append(order, idx)
				mu.Unlock()
				s.finish()
			}
		}(w)
	}
	wg.Wait()
	// capacity=1 serializes claims, and strict mode picks the global
	// minimum pending index, so the observed order is exactly 0..n-1.
	for i, idx := range order {
		if idx != i {
			t.Fatalf("claim %d was attempt %d, want %d (strict priority order)", i, idx, i)
		}
	}
}

// TestStealSchedulerCountsSteals: a worker with an empty deque must
// steal, and the counter must record it.
func TestStealSchedulerCountsSteals(t *testing.T) {
	// 4 attempts, 2 workers, round-robin: deque0=[0,2], deque1=[1,3].
	// Worker 0 drains everything; claims of 1 and 3 are steals.
	s := newStealScheduler(4, 2, 2)
	var stolen int
	for {
		_, st, ok := s.next(0)
		if !ok {
			break
		}
		if st {
			stolen++
		}
		s.finish()
	}
	if stolen != 2 {
		t.Fatalf("worker 0 stole %d attempts, want 2", stolen)
	}
	if got := s.stealCount(); got != 2 {
		t.Fatalf("stealCount() = %d, want 2", got)
	}
}
