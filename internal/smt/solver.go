package smt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sat"
)

// Solver decides conjunctions of width-1 terms by Tseitin bit-blasting
// into a CDCL SAT solver. It is incremental: Assert may be called between
// Check calls, and Check accepts assumption terms, which is how the
// repair synthesizer performs its minimal-change linear search without
// re-encoding the unrolled circuit.
type Solver struct {
	ctx   *Context
	sat   *sat.Solver
	bits  map[*Term][]sat.Lit
	gates map[gateKey]sat.Lit
	t, f  sat.Lit

	model map[*Term]bv.BV // var snapshot after a Sat answer

	// Abstract-interpretation state: facts harvested from hard asserts
	// plus the simplifier memo (invalidated on environment tightening).
	// nil when simplification is disabled (see SetDomains).
	abs     *Abs
	domains DomainConfig

	// shadows are passive replica encoders fed the same original (pre-
	// simplification) assert stream under different domain
	// configurations. They blast but never solve, so their CNF sizes
	// give apples-to-apples per-domain A/B measurements along the exact
	// search path the live solver takes (see AddShadow).
	shadows []*shadowEnc

	// Self-certification state. asserted holds every (simplified) term
	// handed to the bit-blaster, so a Sat model can be re-checked by the
	// reference interpreter; lastAssump* hold the most recent Check call's
	// assumptions for the same purpose, and — as literals — the target
	// clause of an assumption-relative Unsat certificate.
	asserted        []*Term
	lastAssumpTerms []*Term
	lastAssumpLits  []sat.Lit
	validate        bool
	checker         *sat.Checker
	certStats       CertifyStats

	// obs positions the solver in the observability layer (see SetObs).
	obs obs.Scope
}

// CertifyStats accumulates certification work performed by a solver.
type CertifyStats struct {
	ModelsValidated int           // Sat models re-evaluated by the interpreter
	UnsatsCertified int           // Unsat verdicts passed through the DRUP checker
	LearnedChecked  int           // learned clauses RUP-verified so far
	ProofSteps      int           // proof log length so far
	CheckTime       time.Duration // time spent validating + checking
}

// Add merges another solver's certification stats into st.
func (st *CertifyStats) Add(o CertifyStats) {
	st.ModelsValidated += o.ModelsValidated
	st.UnsatsCertified += o.UnsatsCertified
	st.LearnedChecked += o.LearnedChecked
	st.ProofSteps += o.ProofSteps
	st.CheckTime += o.CheckTime
}

type gateKey struct {
	op   Op
	a, b sat.Lit
}

// shadowEnc pairs a shadow encoder with its report name.
type shadowEnc struct {
	name string
	s    *Solver
}

// ShadowStats reports the CNF size a shadow configuration produced for
// the same assert stream as the live solver.
type ShadowStats struct {
	Name string
	SAT  sat.Statistics
}

// NewSolver returns a solver for terms of the given context. Model
// validation (re-evaluating all asserted terms after every Sat answer)
// is always on under `go test`; use EnableCertification to also get
// DRUP-checked Unsat verdicts.
func NewSolver(ctx *Context) *Solver {
	s := &Solver{
		ctx:      ctx,
		sat:      sat.New(),
		bits:     map[*Term][]sat.Lit{},
		gates:    map[gateKey]sat.Lit{},
		abs:      NewAbs(),
		validate: testing.Testing(),
	}
	s.abs.SetFree(s.isBlasted)
	v := s.sat.NewVar()
	s.t = sat.PosLit(v)
	s.f = s.t.Not()
	s.sat.AddClause(s.t)
	return s
}

func (s *Solver) isBlasted(t *Term) bool {
	_, ok := s.bits[t]
	return ok
}

// SetDomains selects which abstract domains run in this solver's
// simplifier (cfg.Disable turns simplification off entirely). Must be
// called before the first Assert.
func (s *Solver) SetDomains(cfg DomainConfig) {
	if len(s.asserted) > 0 {
		panic("smt: SetDomains after Assert")
	}
	s.domains = cfg
	if cfg.Disable {
		s.abs = nil
		return
	}
	s.abs = NewAbsWith(cfg)
	s.abs.SetFree(s.isBlasted)
}

// DisableSimplify turns off the abstract-interpretation pre-blast
// simplifier for this solver (used for A/B measurement of its CNF
// impact). It should be called before the first Assert.
func (s *Solver) DisableSimplify() {
	s.SetDomains(DomainConfig{Disable: true})
}

// SetFactCache attaches a shared base-fact cache (see FactCache) so
// structure-only analysis work carries across the sequential solvers of
// one synthesizer. The cache's domain configuration must match this
// solver's; a mismatch is ignored. Call before the first Assert.
func (s *Solver) SetFactCache(fc *FactCache) {
	if s.abs != nil {
		s.abs.SetCache(fc)
	}
}

// AddShadow attaches a passive shadow encoder running the given domain
// configuration. The shadow receives every original (pre-simplify)
// asserted term and Check assumption, blasts them with its own analysis
// state, and never solves; its CNF statistics (ShadowStats) measure
// what this solver's encoding WOULD have been under cfg, along the
// identical search path. Must be called before the first Assert.
func (s *Solver) AddShadow(name string, cfg DomainConfig) {
	if len(s.asserted) > 0 {
		panic("smt: AddShadow after Assert")
	}
	sh := NewSolver(s.ctx)
	sh.validate = false
	sh.SetDomains(cfg)
	s.shadows = append(s.shadows, &shadowEnc{name: name, s: sh})
}

// ShadowStats returns the CNF statistics of every attached shadow
// encoder, in attachment order.
func (s *Solver) ShadowStats() []ShadowStats {
	out := make([]ShadowStats, 0, len(s.shadows))
	for _, sh := range s.shadows {
		out = append(out, ShadowStats{Name: sh.name, SAT: sh.s.SATStats()})
	}
	return out
}

// AbsStats returns the abstract-interpretation work counters (zero when
// simplification is disabled).
func (s *Solver) AbsStats() AbsStats {
	if s.abs == nil {
		return AbsStats{}
	}
	return s.abs.Stats
}

// EnableCertification switches the solver into self-certifying mode:
// the SAT core logs a DRUP proof, every Unsat verdict is re-checked by
// the independent forward RUP checker, and every Sat model is
// re-evaluated by the reference interpreter. Call it right after
// NewSolver, before any Assert, so the proof log covers the whole
// clause database.
func (s *Solver) EnableCertification() {
	if s.checker != nil {
		return
	}
	s.checker = sat.NewChecker(s.sat.StartProof())
	s.validate = true
}

// Certifying reports whether EnableCertification has been called.
func (s *Solver) Certifying() bool { return s.checker != nil }

// CertifyStats returns the accumulated certification statistics.
func (s *Solver) CertifyStats() CertifyStats {
	st := s.certStats
	if s.checker != nil {
		st.LearnedChecked = s.checker.Checked()
		st.ProofSteps = len(s.sat.Proof().Steps)
	}
	return st
}

// SetObs positions the solver in the observability layer: every Check
// records an "smt.check" span under the scope's span (with the CDCL
// "sat.solve" span nested inside it), certification work gets its own
// "certify" span, and the scope's metrics registry collects the solver
// counters. The zero Scope (the default) disables all of it. SetObs may
// be called again between Checks to re-parent subsequent spans.
func (s *Solver) SetObs(sc obs.Scope) { s.obs = sc }

// SetDeadline sets a wall-clock deadline for subsequent Check calls.
// A zero time disables the deadline.
func (s *Solver) SetDeadline(d time.Time) { s.sat.Deadline = d }

// SetInterrupt installs a cancellation flag polled during Check. Setting
// the flag from another goroutine makes the running Check return
// (Unknown, sat.ErrInterrupted). A nil flag disables cancellation.
func (s *Solver) SetInterrupt(flag *atomic.Bool) { s.sat.Interrupt = flag }

// SetShare connects the underlying SAT solver to a learned-clause
// exchange endpoint (see sat.Exchange). Imported clauses are RUP-verified
// against this solver's own database before admission, so certification
// is preserved. Must be set before the first Check.
func (s *Solver) SetShare(e *sat.Endpoint) { s.sat.SetShare(e) }

func (s *Solver) fresh() sat.Lit { return sat.PosLit(s.sat.NewVar()) }

// andLit returns a literal equivalent to a ∧ b.
func (s *Solver) andLit(a, b sat.Lit) sat.Lit {
	if a == s.f || b == s.f {
		return s.f
	}
	if a == s.t {
		return b
	}
	if b == s.t {
		return a
	}
	if a == b {
		return a
	}
	if a == b.Not() {
		return s.f
	}
	if b < a {
		a, b = b, a
	}
	key := gateKey{OpAnd, a, b}
	if g, ok := s.gates[key]; ok {
		return g
	}
	g := s.fresh()
	s.sat.AddClause(g.Not(), a)
	s.sat.AddClause(g.Not(), b)
	s.sat.AddClause(g, a.Not(), b.Not())
	s.gates[key] = g
	return g
}

func (s *Solver) orLit(a, b sat.Lit) sat.Lit {
	return s.andLit(a.Not(), b.Not()).Not()
}

// xorLit returns a literal equivalent to a ⊕ b.
func (s *Solver) xorLit(a, b sat.Lit) sat.Lit {
	if a == s.f {
		return b
	}
	if a == s.t {
		return b.Not()
	}
	if b == s.f {
		return a
	}
	if b == s.t {
		return a.Not()
	}
	if a == b {
		return s.f
	}
	if a == b.Not() {
		return s.t
	}
	if b < a {
		a, b = b, a
	}
	key := gateKey{OpXor, a, b}
	if g, ok := s.gates[key]; ok {
		return g
	}
	g := s.fresh()
	s.sat.AddClause(g.Not(), a, b)
	s.sat.AddClause(g.Not(), a.Not(), b.Not())
	s.sat.AddClause(g, a, b.Not())
	s.sat.AddClause(g, a.Not(), b)
	s.gates[key] = g
	return g
}

func (s *Solver) iffLit(a, b sat.Lit) sat.Lit { return s.xorLit(a, b).Not() }

// muxLit returns c ? a : b.
func (s *Solver) muxLit(c, a, b sat.Lit) sat.Lit {
	if c == s.t {
		return a
	}
	if c == s.f {
		return b
	}
	if a == b {
		return a
	}
	return s.orLit(s.andLit(c, a), s.andLit(c.Not(), b))
}

// addBits computes a + b + cin, returning sum bits.
func (s *Solver) addBits(a, b []sat.Lit, cin sat.Lit) []sat.Lit {
	n := len(a)
	sum := make([]sat.Lit, n)
	c := cin
	for i := 0; i < n; i++ {
		axb := s.xorLit(a[i], b[i])
		sum[i] = s.xorLit(axb, c)
		c = s.orLit(s.andLit(a[i], b[i]), s.andLit(axb, c))
	}
	return sum
}

// ultBits returns the literal for unsigned a < b.
func (s *Solver) ultBits(a, b []sat.Lit) sat.Lit {
	lt := s.f
	for i := 0; i < len(a); i++ {
		bitLt := s.andLit(a[i].Not(), b[i])
		eq := s.iffLit(a[i], b[i])
		lt = s.orLit(bitLt, s.andLit(eq, lt))
	}
	return lt
}

func (s *Solver) constBits(v bv.BV) []sat.Lit {
	out := make([]sat.Lit, v.Width())
	for i := range out {
		if v.Bit(i) {
			out[i] = s.t
		} else {
			out[i] = s.f
		}
	}
	return out
}

// blast returns the SAT literals (LSB first) representing t.
func (s *Solver) blast(t *Term) []sat.Lit {
	if ls, ok := s.bits[t]; ok {
		return ls
	}
	var out []sat.Lit
	switch t.Op {
	case OpConst:
		out = s.constBits(t.Val)
	case OpVar:
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = s.fresh()
		}
	case OpNot:
		a := s.blast(t.Args[0])
		out = make([]sat.Lit, len(a))
		for i := range a {
			out[i] = a[i].Not()
		}
	case OpAnd, OpOr, OpXor:
		a, b := s.blast(t.Args[0]), s.blast(t.Args[1])
		out = make([]sat.Lit, len(a))
		for i := range a {
			switch t.Op {
			case OpAnd:
				out[i] = s.andLit(a[i], b[i])
			case OpOr:
				out[i] = s.orLit(a[i], b[i])
			default:
				out[i] = s.xorLit(a[i], b[i])
			}
		}
	case OpNeg:
		a := s.blast(t.Args[0])
		na := make([]sat.Lit, len(a))
		for i := range a {
			na[i] = a[i].Not()
		}
		out = s.addBits(na, s.constBits(bv.Zero(t.Width)), s.t)
	case OpAdd:
		out = s.addBits(s.blast(t.Args[0]), s.blast(t.Args[1]), s.f)
	case OpSub:
		a, b := s.blast(t.Args[0]), s.blast(t.Args[1])
		nb := make([]sat.Lit, len(b))
		for i := range b {
			nb[i] = b[i].Not()
		}
		out = s.addBits(a, nb, s.t)
	case OpMul:
		a, b := s.blast(t.Args[0]), s.blast(t.Args[1])
		acc := s.constBits(bv.Zero(t.Width))
		for i := 0; i < t.Width; i++ {
			// addend = (a << i) masked by b[i]
			addend := make([]sat.Lit, t.Width)
			for j := 0; j < t.Width; j++ {
				if j < i {
					addend[j] = s.f
				} else {
					addend[j] = s.andLit(a[j-i], b[i])
				}
			}
			acc = s.addBits(acc, addend, s.f)
		}
		out = acc
	case OpUdiv, OpUrem:
		q, r := s.divRemBits(t.Args[0], t.Args[1])
		if t.Op == OpUdiv {
			out = q
		} else {
			out = r
		}
	case OpEq:
		a, b := s.blast(t.Args[0]), s.blast(t.Args[1])
		eq := s.t
		for i := range a {
			eq = s.andLit(eq, s.iffLit(a[i], b[i]))
		}
		out = []sat.Lit{eq}
	case OpUlt:
		out = []sat.Lit{s.ultBits(s.blast(t.Args[0]), s.blast(t.Args[1]))}
	case OpSlt:
		a, b := s.blast(t.Args[0]), s.blast(t.Args[1])
		fa := make([]sat.Lit, len(a))
		fb := make([]sat.Lit, len(b))
		copy(fa, a)
		copy(fb, b)
		fa[len(fa)-1] = fa[len(fa)-1].Not()
		fb[len(fb)-1] = fb[len(fb)-1].Not()
		out = []sat.Lit{s.ultBits(fa, fb)}
	case OpShl, OpLshr, OpAshr:
		out = s.shiftBits(t)
	case OpConcat:
		hi, lo := s.blast(t.Args[0]), s.blast(t.Args[1])
		out = append(append([]sat.Lit{}, lo...), hi...)
	case OpExtract:
		a := s.blast(t.Args[0])
		out = append([]sat.Lit{}, a[t.Lo:t.Hi+1]...)
	case OpZeroExt:
		a := s.blast(t.Args[0])
		out = append([]sat.Lit{}, a...)
		for len(out) < t.Width {
			out = append(out, s.f)
		}
	case OpSignExt:
		a := s.blast(t.Args[0])
		out = append([]sat.Lit{}, a...)
		sign := a[len(a)-1]
		for len(out) < t.Width {
			out = append(out, sign)
		}
	case OpIte:
		c := s.blast(t.Args[0])[0]
		a, b := s.blast(t.Args[1]), s.blast(t.Args[2])
		out = make([]sat.Lit, len(a))
		for i := range a {
			out[i] = s.muxLit(c, a[i], b[i])
		}
	case OpRedOr:
		a := s.blast(t.Args[0])
		r := s.f
		for _, l := range a {
			r = s.orLit(r, l)
		}
		out = []sat.Lit{r}
	case OpRedAnd:
		a := s.blast(t.Args[0])
		r := s.t
		for _, l := range a {
			r = s.andLit(r, l)
		}
		out = []sat.Lit{r}
	case OpRedXor:
		a := s.blast(t.Args[0])
		r := s.f
		for _, l := range a {
			r = s.xorLit(r, l)
		}
		out = []sat.Lit{r}
	default:
		panic(fmt.Sprintf("smt: blast of %v", t.Op))
	}
	if len(out) != t.Width {
		panic(fmt.Sprintf("smt: blast width mismatch for %v: got %d want %d", t.Op, len(out), t.Width))
	}
	s.bits[t] = out
	return out
}

// divRemBits implements restoring long division. For a zero divisor the
// quotient is all ones and the remainder equals the dividend, matching
// SMT-LIB.
func (s *Solver) divRemBits(at, bt *Term) (q, r []sat.Lit) {
	a, b := s.blast(at), s.blast(bt)
	w := len(a)
	// Work with a w+1-bit remainder so (r<<1)|bit never overflows.
	rw := make([]sat.Lit, w+1)
	for i := range rw {
		rw[i] = s.f
	}
	bw := append(append([]sat.Lit{}, b...), s.f)
	q = make([]sat.Lit, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | a[i]
		shifted := make([]sat.Lit, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], rw[:w])
		// ge = shifted >= b
		ge := s.ultBits(shifted, bw).Not()
		q[i] = ge
		// r = ge ? shifted - b : shifted
		nb := make([]sat.Lit, w+1)
		for j := range bw {
			nb[j] = bw[j].Not()
		}
		diff := s.addBits(shifted, nb, s.t)
		rw = make([]sat.Lit, w+1)
		for j := range rw {
			rw[j] = s.muxLit(ge, diff[j], shifted[j])
		}
	}
	return q, rw[:w]
}

// shiftBits builds a barrel shifter for variable shifts.
func (s *Solver) shiftBits(t *Term) []sat.Lit {
	a, amt := s.blast(t.Args[0]), s.blast(t.Args[1])
	w := t.Width
	cur := append([]sat.Lit{}, a...)
	var fill func(i int) sat.Lit
	switch t.Op {
	case OpAshr:
		sign := a[w-1]
		fill = func(int) sat.Lit { return sign }
	default:
		fill = func(int) sat.Lit { return s.f }
	}
	// Stages for amount bits that can produce in-range shifts.
	for stage := 0; stage < len(amt) && (1<<stage) < w; stage++ {
		d := 1 << stage
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch t.Op {
			case OpShl:
				if i-d >= 0 {
					shifted = cur[i-d]
				} else {
					shifted = s.f
				}
			default: // right shifts
				if i+d < w {
					shifted = cur[i+d]
				} else {
					shifted = fill(i)
				}
			}
			next[i] = s.muxLit(amt[stage], shifted, cur[i])
		}
		cur = next
	}
	// If any amount bit >= log2 range is set, the result saturates.
	over := s.f
	for stage := 0; stage < len(amt); stage++ {
		if 1<<stage >= w || stage >= 31 {
			over = s.orLit(over, amt[stage])
		}
	}
	if over != s.f {
		out := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			out[i] = s.muxLit(over, fill(i), cur[i])
		}
		return out
	}
	return cur
}

// prepare runs the abstract-interpretation simplifier over a term
// (identity when simplification is disabled).
func (s *Solver) prepare(t *Term) *Term {
	if s.abs == nil {
		return t
	}
	s.abs.beginAssert()
	return s.ctx.Simplify(t, s.abs)
}

// Assert adds a width-1 term as a hard constraint. The term is first
// simplified under the facts harvested from earlier asserts; the
// simplified form is what gets blasted, recorded for model validation,
// and mined for new facts. Facts are learned only after the clause is
// in the SAT core, so a pinning assert like x = c still pins x's bits
// (later occurrences of x then fold to c).
func (s *Solver) Assert(t *Term) {
	if t.Width != 1 {
		panic("smt: assert of non-boolean term")
	}
	for _, sh := range s.shadows {
		sh.s.Assert(t)
	}
	t = s.prepare(t)
	if t.Op == OpConst && !t.Val.IsZero() {
		return // simplified to true: redundant under earlier asserts
	}
	s.sat.AddClause(s.blast(t)[0])
	s.asserted = append(s.asserted, t)
	if s.abs != nil && t.Op != OpConst {
		s.abs.LearnAsserted(t)
	}
}

// Check decides the asserted constraints together with the given width-1
// assumptions. On Sat, the model is snapshotted and can be read with
// Value until the next Check. In validating/certifying mode a Sat model
// is re-evaluated by the reference interpreter and an Unsat verdict is
// re-checked against the DRUP proof; a failure of either check is a
// solver soundness bug and panics.
func (s *Solver) Check(assumptions ...*Term) (sat.Status, error) {
	span := s.obs.Tracer.Start(s.obs.Span, "smt.check")
	s.sat.Obs = obs.Scope{Tracer: s.obs.Tracer, Span: span, Metrics: s.obs.Metrics,
		Rec: s.obs.Rec, Label: s.obs.Label, Worker: s.obs.Worker}
	lits := make([]sat.Lit, 0, len(assumptions))
	terms := make([]*Term, 0, len(assumptions))
	for _, a := range assumptions {
		if a.Width != 1 {
			panic("smt: assumption of non-boolean term")
		}
		for _, sh := range s.shadows {
			sh.s.blast(sh.s.prepare(a))
		}
		a = s.prepare(a)
		terms = append(terms, a)
		lits = append(lits, s.blast(a)[0])
	}
	s.lastAssumpTerms, s.lastAssumpLits = terms, lits
	st, err := s.sat.Solve(lits...)
	if st == sat.Sat {
		s.snapshotModel()
		if s.validate {
			start := time.Now()
			cspan := s.obs.Tracer.Start(span, "certify")
			cspan.SetStr("kind", "validate-model")
			if verr := s.ValidateModel(); verr != nil {
				panic(fmt.Sprintf("smt: unsound Sat verdict: %v", verr))
			}
			cspan.End()
			s.certStats.ModelsValidated++
			s.certStats.CheckTime += time.Since(start)
			s.obs.Metrics.Add("certify.models_validated", 1)
		}
	} else {
		s.model = nil
		if st == sat.Unsat && s.checker != nil {
			start := time.Now()
			cspan := s.obs.Tracer.Start(span, "certify")
			cspan.SetStr("kind", "drup-unsat")
			if cerr := s.CertifyLastUnsat(); cerr != nil {
				panic(fmt.Sprintf("smt: unsound Unsat verdict: %v", cerr))
			}
			cspan.SetInt("proof_steps", int64(s.checker.Checked()))
			cspan.End()
			s.certStats.UnsatsCertified++
			s.certStats.CheckTime += time.Since(start)
			s.obs.Metrics.Add("certify.unsats_certified", 1)
		}
	}
	if span != nil {
		span.SetStr("result", st.String())
		span.SetInt("smt_terms", int64(len(s.bits)))
		span.End()
	}
	s.obs.Metrics.Add("smt.checks", 1)
	return st, err
}

// ValidateModel re-evaluates every asserted term and the last Check
// call's assumptions under the current model using the reference
// interpreter, returning an error on the first term that does not
// evaluate to true. It must be called while a Sat model is held.
func (s *Solver) ValidateModel() error {
	if s.model == nil {
		return fmt.Errorf("no model to validate")
	}
	ev := NewEvaluator(func(v *Term) bv.BV {
		if val, ok := s.model[v]; ok {
			return val
		}
		return bv.Zero(v.Width)
	})
	for _, t := range s.asserted {
		if ev.Eval(t).IsZero() {
			return fmt.Errorf("asserted term %s is false under the model", t)
		}
	}
	for _, t := range s.lastAssumpTerms {
		if ev.Eval(t).IsZero() {
			return fmt.Errorf("assumption %s is false under the model", t)
		}
	}
	return nil
}

// CertifyLastUnsat verifies the DRUP certificate for the most recent
// Unsat answer: it replays any new proof steps through the forward RUP
// checker and then checks the clause over the negated assumptions of
// the last Check call (the empty clause when there were none).
// EnableCertification must have been called before the first Assert.
func (s *Solver) CertifyLastUnsat() error {
	if s.checker == nil {
		return fmt.Errorf("certification not enabled")
	}
	return s.checker.CheckUnsat(s.lastAssumpLits)
}

func (s *Solver) snapshotModel() {
	s.model = map[*Term]bv.BV{}
	for t, lits := range s.bits {
		if t.Op != OpVar {
			continue
		}
		v := bv.Zero(t.Width)
		for i, l := range lits {
			val := s.sat.Value(l.Var())
			if l.Neg() {
				val = !val
			}
			if val {
				v = v.WithBit(i, true)
			}
		}
		s.model[t] = v
	}
}

// Value evaluates a term under the last Sat model. Variables that do not
// occur in the encoded formula evaluate to zero.
func (s *Solver) Value(t *Term) bv.BV {
	if s.model == nil {
		panic("smt: Value called without a Sat model")
	}
	return Eval(t, func(v *Term) bv.BV {
		if val, ok := s.model[v]; ok {
			return val
		}
		return bv.Zero(v.Width)
	})
}

// NumSATVars reports the size of the underlying SAT instance (for stats).
func (s *Solver) NumSATVars() int { return s.sat.NumVars() }

// Stats returns the underlying SAT search statistics.
func (s *Solver) Stats() (conflicts, decisions, propagations int64) { return s.sat.Stats() }

// SATStats returns the full underlying SAT solver statistics.
func (s *Solver) SATStats() sat.Statistics { return s.sat.Statistics() }
