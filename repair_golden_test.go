package rtlrepair_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtlrepair/internal/bench"
	"rtlrepair/internal/core"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/repair_goldens from the current engine")

// goldenSeed mirrors the evaluation's seed choice: the first seed under
// which the buggy design actually fails its testbench, so randomized
// unknown values cannot mask the bug.
func goldenSeed(b *bench.Benchmark, tr *trace.Trace, base int64) int64 {
	sys, err := b.BuggySystem()
	if err != nil {
		return base
	}
	for seed := base; seed < base+8; seed++ {
		init, ctr := core.Concretize(sys, tr, sim.Randomize, seed)
		cs := sim.NewCycleSim(sys, sim.Zero, 0)
		for name, v := range init {
			cs.SetState(name, v)
		}
		if !sim.RunTraceFrom(cs, ctr, 0, sim.RunOptions{Policy: sim.Zero}).Passed() {
			return seed
		}
	}
	return base
}

// goldenRepair runs one benchmark through the repair engine with the
// golden-test settings and renders the deterministic part of the result.
// The obs scope is threaded through so golden runs can be traced; a zero
// scope reproduces the untraced engine.
func goldenRepair(t *testing.T, b *bench.Benchmark, opts core.Options, sc obs.Scope) (string, time.Duration) {
	t.Helper()
	tr, err := b.Trace()
	if err != nil {
		t.Fatalf("%s: trace: %v", b.Name, err)
	}
	m, err := b.BuggyModule()
	if err != nil {
		t.Fatalf("%s: parse: %v", b.Name, err)
	}
	lib, err := b.LibModules()
	if err != nil {
		t.Fatalf("%s: lib: %v", b.Name, err)
	}
	opts.Policy = sim.Randomize
	opts.Seed = goldenSeed(b, tr, 1)
	opts.Lib = lib
	if opts.Timeout == 0 {
		opts.Timeout = 120 * time.Second
	}
	start := time.Now()
	res := core.RepairCtx(obs.NewContext(context.Background(), sc), m, tr, opts)
	dur := time.Since(start)
	var sb strings.Builder
	fmt.Fprintf(&sb, "status: %s\ntemplate: %s\nchanges: %d\n", res.Status, res.Template, res.Changes)
	for _, d := range res.ChangeDescs {
		fmt.Fprintf(&sb, "change: %s\n", d)
	}
	sb.WriteString("----\n")
	if res.Repaired != nil {
		sb.WriteString(verilog.Print(res.Repaired))
	}
	return sb.String(), dur
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "repair_goldens", name+".golden")
}

// TestRepairGoldens pins the repair engine's output on every benchmark
// design: status, template, change count, change descriptions and the
// byte-exact repaired source. The goldens are captured from the unified
// per-attempt engine at workers=1 (see DESIGN.md for why the balanced
// encodings and incremental window reuse shifted a handful of designs
// to different equally-minimal repairs); workers=1 must reproduce them
// byte-for-byte, and the parallel portfolio must select the same result.
func TestRepairGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark suite")
	}
	for _, b := range bench.Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			got, dur := goldenRepair(t, b, core.Options{Workers: 1}, obs.Scope{})
			if strings.Contains(got, "status: timeout") {
				t.Skipf("%s: timeout-bound design, not byte-comparable", b.Name)
			}
			path := goldenPath(b.Name)
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%.2fs)", path, dur.Seconds())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s: result differs from the pinned golden\n--- got ---\n%s\n--- want ---\n%s",
					b.Name, got, want)
			}
			t.Logf("%s: %.2fs", b.Name, dur.Seconds())
		})
	}
}

// TestPortfolioMatchesSequential runs the parallel portfolio on every
// benchmark design and requires the selected repair to be byte-identical
// to the sequential engine's golden output: same status, template,
// change count, change descriptions and repaired source. Every run is
// traced, which doubles as the suite-wide check that tracing never
// perturbs repair results and every design yields a schema-valid trace.
func TestPortfolioMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark suite")
	}
	for _, b := range bench.Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			tracer := obs.New()
			got, dur := goldenRepair(t, b, core.Options{Workers: 4}, obs.Scope{Tracer: tracer})
			if strings.Contains(got, "status: timeout") {
				t.Skipf("%s: timeout-bound design, not byte-comparable", b.Name)
			}
			want, err := os.ReadFile(goldenPath(b.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestRepairGoldens with -update-goldens): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s: portfolio result differs from sequential engine\n--- got ---\n%s\n--- want ---\n%s",
					b.Name, got, want)
			}
			var buf bytes.Buffer
			if err := tracer.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			if err := obs.ValidateJSONL(buf.Bytes()); err != nil {
				t.Errorf("%s: traced portfolio run exported an invalid trace: %v", b.Name, err)
			}
			t.Logf("%s: %.2fs", b.Name, dur.Seconds())
		})
	}
}
