// Command rtlserved runs the repair pipeline as an HTTP/JSON service:
//
//	rtlserved -addr localhost:8080
//
// Submit a repair (wire format matches the rtlrepair CLI: library
// modules first, the design under repair last, the self-describing
// trace CSV as testbench):
//
//	curl -s localhost:8080/v1/repair?wait=1 -d '{"source": "...", "trace": "..."}'
//
// Live introspection is always on (no flag): GET /debugz/spans shows
// the open-span tree, /debugz/ring dumps the flight-recorder ring as
// JSONL, /debugz/solvers lists every running SAT search with conflict
// rates and heartbeat staleness, and GET /v1/jobs/{id}/events streams a
// job's recorder events as Server-Sent Events. A running job whose
// solvers all stop heartbeating for -stall-after trips the
// serve.jobs.stalled watchdog gauge on /metricsz.
//
// Fleet mode (see DESIGN.md "Fleet"): -wal makes the node crash-safe
// (accepted jobs are durably logged and replayed after a restart) and
// -artifacts points several nodes at one shared content-addressed
// store so any node's results and frontend artifacts warm all of them:
//
//	rtlserved -addr :8081 -name n1 -wal /var/rtl/n1.wal -artifacts /var/rtl/cas
//
// -router turns the process into the fleet's front door instead: jobs
// are sharded across -nodes by their content-hash result key
// (rendezvous hashing), with health probes, failover to the next
// replica, per-tenant quotas and batch shedding, and a /debugz/fleet
// rollup of every node's gauges:
//
//	rtlserved -addr :8080 -router -nodes n1=http://h1:8081,n2=http://h2:8081
//
// See DESIGN.md "Serving" and "Live introspection" for the API, queue,
// cache, and lifecycle semantics. SIGINT/SIGTERM drain gracefully: intake stops, accepted
// jobs finish (cancelled if -drain-timeout expires — they still reach a
// terminal state), and the observability outputs flush.
//
// With -portfolio-workers > 1, GET /metricsz additionally reports the
// parallel portfolio's health: portfolio.utilization_pct (worker busy
// time over wall clock), portfolio.steals (attempts claimed across
// worker deques), portfolio.prefix.{cycles,hits} (shared encode-prefix
// cache), and sat.share.{exported,imported,rejected} (learned-clause
// exchange totals).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtlrepair/internal/fleet"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "localhost:8080", "listen address")
		queueDepth    = flag.Int("queue", 64, "max queued jobs; beyond it submissions get 429")
		slots         = flag.Int("slots", 0, "concurrent repair jobs (0 = NumCPU/2)")
		portfolio     = flag.Int("portfolio-workers", 1, "portfolio workers per job (0 = one per CPU)")
		jobTimeout    = flag.Duration("job-timeout", 60*time.Second, "per-job repair budget")
		queueTimeout  = flag.Duration("queue-timeout", 5*time.Minute, "max queue wait before a job is failed")
		resultCache   = flag.Int("result-cache", 256, "result cache entries (-1 disables)")
		artifactCache = flag.Int("artifact-cache", 64, "frontend artifact cache entries (-1 disables)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget before running jobs are cancelled")
		stallAfter    = flag.Duration("stall-after", 10*time.Second, "solver heartbeat staleness behind the stalled-job watchdog (-1s disables)")

		nodeName    = flag.String("name", "", "fleet node name (default: hostname); feeds the router's rendezvous hash")
		walPath     = flag.String("wal", "", "write-ahead job log path; enables crash-safe replay")
		artifactDir = flag.String("artifacts", "", "shared content-addressed store directory (share it across nodes)")

		routerMode    = flag.Bool("router", false, "run as the fleet router instead of a repair node")
		nodesFlag     = flag.String("nodes", "", "router: comma-separated name=url fleet members")
		probeInterval = flag.Duration("probe-interval", time.Second, "router: node health-probe period")
		tenantQuota   = flag.Int("tenant-quota", 0, "router: max submissions per tenant per minute (0 = unlimited)")
		batchShed     = flag.Float64("batch-shed", 0.75, "router: fleet queue utilization above which batch priority is shed (>=1 disables)")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	check(ocli.Start())
	if ocli.Metrics == nil {
		// The server always keeps metrics (they feed /metricsz); sharing
		// the registry with the CLI makes -metrics-out see the same data.
		ocli.Metrics = obs.NewRegistry()
	}

	if *routerMode {
		runRouter(&ocli, *addr, *nodesFlag, *probeInterval, *tenantQuota, *batchShed)
		return
	}

	if *nodeName == "" {
		if hn, err := os.Hostname(); err == nil {
			*nodeName = hn
		}
	}
	node, err := fleet.NewNode(fleet.NodeConfig{
		Name:        *nodeName,
		WALPath:     *walPath,
		ArtifactDir: *artifactDir,
		Serve: serve.Config{
			QueueDepth:        *queueDepth,
			Slots:             *slots,
			PortfolioWorkers:  *portfolio,
			JobTimeout:        *jobTimeout,
			QueueTimeout:      *queueTimeout,
			ResultCacheSize:   *resultCache,
			ArtifactCacheSize: *artifactCache,
			StallAfter:        *stallAfter,
			Obs:               ocli.Scope(),
		},
	})
	check(err)
	hs := &http.Server{Addr: *addr, Handler: node.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	st := node.Server().Snapshot()
	fmt.Fprintf(os.Stderr, "rtlserved: listening on %s (slots=%d queue=%d)\n", *addr, st.Slots, st.QueueCap)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		check(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rtlserved: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := node.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rtlserved: drain:", err)
	}
	// In-flight HTTP requests (e.g. ?wait=1 pollers) complete as their
	// jobs reach terminal states; then close the listener.
	if err := hs.Shutdown(drainCtx); err != nil {
		_ = hs.Close()
	}
	check(ocli.Finish())
	fmt.Fprintln(os.Stderr, "rtlserved: bye")
}

// runRouter serves the fleet front door until SIGINT/SIGTERM.
func runRouter(ocli *obs.CLI, addr, nodesFlag string, probe time.Duration, quota int, shed float64) {
	nodes, err := parseNodes(nodesFlag)
	check(err)
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Nodes:         nodes,
		ProbeInterval: probe,
		TenantQuota:   quota,
		BatchShedUtil: shed,
		Metrics:       ocli.Metrics,
	})
	check(err)
	hs := &http.Server{Addr: addr, Handler: rt.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rtlserved: router on %s over %d nodes\n", addr, len(nodes))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		check(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		_ = hs.Close()
	}
	rt.Close()
	check(ocli.Finish())
	fmt.Fprintln(os.Stderr, "rtlserved: bye")
}

// parseNodes decodes -nodes "n1=http://h1:8081,n2=http://h2:8081".
func parseNodes(s string) (map[string]string, error) {
	nodes := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -nodes entry %q (want name=url)", part)
		}
		nodes[name] = url
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-router needs -nodes name=url[,name=url...]")
	}
	return nodes, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlserved:", err)
		os.Exit(1)
	}
}
