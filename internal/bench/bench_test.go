package bench

import (
	"testing"

	"rtlrepair/internal/sim"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/verilog"
)

func TestRegistryComplete(t *testing.T) {
	all := Registry()
	if len(CirFixSuite()) != 32 {
		// Table 3 lists 32 benchmarks (Table 2 shows 30: the two
		// unclocked i2c ones have no OSDD).
		t.Fatalf("cirfix suite has %d benchmarks, want 32", len(CirFixSuite()))
	}
	if len(OsrcSuite()) != 13 {
		t.Fatalf("osrc suite has %d benchmarks, want 13", len(OsrcSuite()))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
	// Spot-check the paper's short names are present (Table 3 / Table 6).
	for _, name := range []string{"decoder_w1", "counter_k1", "flop_w2", "fsm_s1",
		"shift_k1", "mux_w1", "i2c_k1", "sha3_s1", "pairing_w2", "reed_b1",
		"sdram_w1", "D8", "C1", "S1.R", "S3"} {
		if ByName(name) == nil {
			t.Fatalf("benchmark %q missing", name)
		}
	}
}

func TestAllSourcesParse(t *testing.T) {
	for _, b := range Registry() {
		if _, err := b.GroundTruthModule(); err != nil {
			t.Fatalf("%s: ground truth: %v", b.Name, err)
		}
		if _, err := b.BuggyModule(); err != nil {
			t.Fatalf("%s: buggy: %v", b.Name, err)
		}
		if _, err := b.LibModules(); err != nil {
			t.Fatalf("%s: lib: %v", b.Name, err)
		}
	}
}

func TestGroundTruthsSynthesize(t *testing.T) {
	for _, b := range Registry() {
		if _, err := b.GroundTruthSystem(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestBuggyDiffersFromGroundTruth(t *testing.T) {
	for _, b := range Registry() {
		if b.GroundTruth == b.Buggy {
			t.Fatalf("%s: buggy source identical to ground truth", b.Name)
		}
	}
}

// TestGroundTruthPassesOwnTrace is the central sanity property: the
// recorded trace must pass on the design it was recorded from, under
// both zero and randomized unknowns.
func TestGroundTruthPassesOwnTrace(t *testing.T) {
	for _, b := range Registry() {
		tr, err := b.Trace()
		if err != nil {
			t.Fatalf("%s: trace: %v", b.Name, err)
		}
		sys, err := b.GroundTruthSystem()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, policy := range []sim.UnknownPolicy{sim.Zero, sim.Randomize} {
			res := sim.RunTrace(sys, tr, sim.RunOptions{Policy: policy, Seed: 99})
			if !res.Passed() {
				t.Fatalf("%s: ground truth fails own trace (policy %v) at cycle %d (%s)",
					b.Name, policy, res.FirstFailure, res.FailedSignal)
			}
		}
		if ext, _ := b.ExtendedTrace(); ext != nil {
			res := sim.RunTrace(sys, ext, sim.RunOptions{Policy: sim.Randomize, Seed: 3})
			if !res.Passed() {
				t.Fatalf("%s: ground truth fails extended trace at %d", b.Name, res.FirstFailure)
			}
		}
	}
}

// TestBuggyFailsTrace: every buggy design must actually fail its
// testbench (or fail to synthesize) — otherwise the benchmark is vacuous.
// shift_k1 is the deliberate exception: its bug is invisible to the
// synthesized circuit (§6.2).
func TestBuggyFailsTrace(t *testing.T) {
	// Bugs that are invisible to the synthesized circuit but visible to
	// event-driven simulation (§6.2 discusses both classes).
	eventOnly := map[string]bool{"shift_k1": true, "fsm_s2": true}
	for _, b := range Registry() {
		tr, err := b.Trace()
		if err != nil {
			t.Fatalf("%s: trace: %v", b.Name, err)
		}
		sys, err := b.BuggySystem()
		if err != nil {
			continue // synthesizability bug: fine
		}
		if eventOnly[b.Name] {
			if res := sim.RunTrace(sys, tr, sim.RunOptions{Policy: sim.Randomize, Seed: 17}); !res.Passed() {
				t.Errorf("%s: should pass cycle simulation (event-only bug), failed at %d", b.Name, res.FirstFailure)
			}
			m, _ := b.BuggyModule()
			lib, _ := b.LibModules()
			es, err := sim.NewEventSim(m, lib)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if res := sim.RunEventTrace(es, tr, sim.RunOptions{Policy: sim.Zero}); res.Passed() {
				t.Errorf("%s: event simulation should reveal the bug", b.Name)
			}
			continue
		}
		// The bug must reveal under X-accurate simulation; randomized
		// concretizations may or may not hit it (that is faithful to
		// the paper's randomization of unknowns).
		res := sim.RunTrace(sys, tr, sim.RunOptions{Policy: sim.KeepX})
		if res.Passed() {
			res = sim.RunTrace(sys, tr, sim.RunOptions{Policy: sim.Randomize, Seed: 17})
		}
		if res.Passed() {
			t.Errorf("%s: buggy design passes the testbench", b.Name)
		}
	}
}

// shift_k1's bug must be visible to the event simulator even though the
// cycle simulator cannot see it.
func TestShiftK1VisibleToEventSimOnly(t *testing.T) {
	b := ByName("shift_k1")
	tr, err := b.Trace()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := b.BuggySystem()
	if err != nil {
		t.Fatal(err)
	}
	if res := sim.RunTrace(sys, tr, sim.RunOptions{Policy: sim.Randomize, Seed: 1}); !res.Passed() {
		t.Fatal("cycle simulation should not reveal the negedge bug")
	}
	m, _ := b.BuggyModule()
	es, err := sim.NewEventSim(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := sim.RunEventTrace(es, tr, sim.RunOptions{Policy: sim.Zero}); res.Passed() {
		t.Fatal("event simulation should reveal the negedge bug")
	}
}

// The decoder_w2 bug must be only partially visible to the original
// testbench and fully visible to the extended one.
func TestDecoderW2ExtendedTestbench(t *testing.T) {
	b := ByName("decoder_w2")
	tr, err := b.Trace()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := b.ExtendedTrace()
	if err != nil || ext == nil {
		t.Fatalf("extended trace: %v", err)
	}
	sys, err := b.BuggySystem()
	if err != nil {
		t.Fatal(err)
	}
	res := sim.RunTrace(sys, tr, sim.RunOptions{Policy: sim.Zero, RunAll: true})
	if res.Passed() {
		t.Fatal("original testbench should reveal the exercised error")
	}
	// Count distinct failing cycles under both testbenches: the extended
	// one must reveal strictly more misbehaviour.
	extRes := sim.RunTrace(sys, ext, sim.RunOptions{Policy: sim.Zero, RunAll: true})
	if extRes.Passed() {
		t.Fatal("extended testbench must fail too")
	}
}

func TestTestbenchLengthProfile(t *testing.T) {
	// The suite must reproduce the paper's short-vs-long testbench mix.
	long := 0
	for _, b := range CirFixSuite() {
		n := b.TBCycles()
		if n == 0 {
			t.Fatalf("%s: empty testbench", b.Name)
		}
		if n > 1000 {
			long++
		}
	}
	if long < 3 {
		t.Fatalf("only %d long testbenches; windowing needs long traces", long)
	}
	if n := ByName("flop_w1").TBCycles(); n != 11 {
		t.Fatalf("flop_w1 TB = %d, want 11", n)
	}
	if n := ByName("mux_w1").TBCycles(); n != 151 {
		t.Fatalf("mux_w1 TB = %d, want 151", n)
	}
}

// Ground truths must also behave under the event simulator (needed for
// the iverilog-style check of Table 4).
func TestGroundTruthPassesEventSim(t *testing.T) {
	for _, b := range Registry() {
		if b.Name == "i2c_w1" || b.Name == "reed_o1" {
			continue // ground truth fine; skip naming for speed below
		}
		tr, err := b.Trace()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() > 2000 {
			tr = tr.Slice(0, 2000)
		}
		m, err := b.GroundTruthModule()
		if err != nil {
			t.Fatal(err)
		}
		lib, _ := b.LibModules()
		es, err := sim.NewEventSim(m, lib)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res := sim.RunEventTrace(es, tr, sim.RunOptions{Policy: sim.Zero})
		if !res.Passed() {
			t.Errorf("%s: ground truth fails event sim at %d (%s)", b.Name, res.FirstFailure, res.FailedSignal)
		}
	}
}

// Preprocessing-class bugs must elaborate after lint; checked via the
// repair engine elsewhere, here we just confirm the classified synthesis
// failures are the expected ones.
func TestExpectedSynthesisFailures(t *testing.T) {
	expectFail := map[string]bool{
		"counter_w1": true, // comb loop after sense-list completion
		"i2c_w1":     true, // clock replaced by data signal
		"reed_o1":    true, // two different clocks
		"fsm_w2":     true, // latch (fixed by preprocessing)
		"fsm_s1":     true, // latch + sensitivity
	}
	for _, b := range Registry() {
		_, err := b.BuggySystem()
		if expectFail[b.Name] && err == nil {
			t.Errorf("%s: expected buggy design to fail synthesis", b.Name)
		}
		if !expectFail[b.Name] && err != nil {
			// Remaining designs must synthesize (possibly after lint,
			// which tests in internal/core cover); only a few bug
			// classes are allowed to fail hard here.
			switch b.Name {
			case "fsm_s2", "shift_w1", "sdram_k2": // assignment-kind bugs may still elaborate
			default:
				t.Errorf("%s: unexpected synthesis failure: %v", b.Name, err)
			}
		}
	}
}

var _ = verilog.Print
var _ = synth.Options{}
var _ = smt.NewContext
