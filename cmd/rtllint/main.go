// Command rtllint runs the netlist-level static-analysis engine over a
// Verilog design and reports structured diagnostics:
//
//	rtllint design.v                # human-readable report
//	rtllint -json design.v          # machine-readable report
//	rtllint -severity error x.v     # only elaboration-fatal findings
//	rtllint -fail-on warning x.v    # CI gate: fail on warnings too
//	rtllint -explain const-net x.v  # justify fact-driven diagnostics
//
// The fact-driven rules (const-net, fact-dead-branch,
// fact-unreachable-arm) are justified by abstract-interpretation
// reachability invariants over the elaborated transition system;
// -explain <rule> (or -explain all) prints the abstract facts behind
// each such verdict, one indented line per fact.
//
// When a file holds several modules the last one is the top (matching
// rtlrepair); earlier modules form the instantiation library.
//
// Exit codes: 0 when no diagnostic at or above the -fail-on severity
// (default error) was found, 1 when at least one was, 2 on usage errors
// or when a file cannot be read or parsed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rtlrepair/internal/analysis"
	"rtlrepair/internal/verilog"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		severity = flag.String("severity", "", "minimum severity to report: info, warning or error (default all)")
		failOn   = flag.String("fail-on", "error", "lowest severity that makes the exit code 1: info, warning or error")
		quiet    = flag.Bool("q", false, "suppress the summary line")
		explain  = flag.String("explain", "", "print justifying abstract facts for the given rule (or \"all\")")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rtllint [flags] design.v [more.v ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	minSev, ok := parseSeverity(*severity, analysis.SevInfo)
	if !ok {
		fmt.Fprintf(os.Stderr, "rtllint: unknown severity %q\n", *severity)
		os.Exit(2)
	}
	failSev, ok := parseSeverity(*failOn, analysis.SevError)
	if !ok {
		fmt.Fprintf(os.Stderr, "rtllint: unknown -fail-on severity %q\n", *failOn)
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		report, err := lintFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtllint: %s: %v\n", path, err)
			exit = 2
			continue
		}
		if countAtLeast(report, failSev) > 0 && exit == 0 {
			exit = 1
		}
		printReport(path, report, minSev, *jsonOut, *quiet, *explain)
	}
	os.Exit(exit)
}

// parseSeverity maps a flag value to a severity; empty means def.
func parseSeverity(s string, def analysis.Severity) (analysis.Severity, bool) {
	switch s {
	case "":
		return def, true
	case "info":
		return analysis.SevInfo, true
	case "warning":
		return analysis.SevWarning, true
	case "error":
		return analysis.SevError, true
	}
	return def, false
}

// countAtLeast counts diagnostics at or above the given severity.
func countAtLeast(report *analysis.Report, min analysis.Severity) int {
	n := 0
	for _, d := range report.Diagnostics {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

func lintFile(path string) (*analysis.Report, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mods, err := verilog.Parse(string(src))
	if err != nil {
		return nil, err
	}
	top := mods[len(mods)-1]
	lib := map[string]*verilog.Module{}
	for _, m := range mods[:len(mods)-1] {
		lib[m.Name] = m
	}
	return analysis.Analyze(top, analysis.Options{Lib: lib, Facts: true}), nil
}

func printReport(path string, report *analysis.Report, minSev analysis.Severity, asJSON, quiet bool, explain string) {
	filtered := &analysis.Report{}
	for _, d := range report.Diagnostics {
		if d.Severity >= minSev {
			filtered.Diagnostics = append(filtered.Diagnostics, d)
		}
	}
	if asJSON {
		out := struct {
			File        string                `json:"file"`
			Errors      int                   `json:"errors"`
			Warnings    int                   `json:"warnings"`
			Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		}{path, report.Count(analysis.SevError), report.Count(analysis.SevWarning), filtered.Diagnostics}
		if out.Diagnostics == nil {
			out.Diagnostics = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	for _, d := range filtered.Diagnostics {
		fmt.Printf("%s:%s\n", path, d)
		if explain != "" && (explain == "all" || explain == d.Rule) {
			for _, line := range d.Explain {
				fmt.Printf("    because %s\n", line)
			}
		}
	}
	if !quiet {
		fmt.Printf("%s: %d error(s), %d warning(s)\n",
			path, report.Count(analysis.SevError), report.Count(analysis.SevWarning))
	}
}
