// Package analysis is a netlist-level static-analysis engine over the
// Verilog AST and the flattened design. It generalizes the three
// auto-fix rules of internal/lint into a multi-pass linter producing
// structured Diagnostic values (rule, severity, position, signal,
// message) — the checks Verilator performs for RTL-Repair's
// preprocessing stage (§4.1) that the seed reimplementation surfaced
// only as late elaboration errors: multiple drivers, combinational
// loops, width mismatches, incomplete or overlapping case statements,
// dead branches and unsupported asynchronous resets.
//
// Error-severity diagnostics correspond to conditions that make
// elaboration fail (the paper's "does not synthesize" outcome); warnings
// flag latch risks and silent-truncation hazards that elaboration
// tolerates. internal/lint consumes the diagnostics to drive its
// automatic fixes and to classify designs as cannot-repair early, and
// internal/core uses the fault-localization pass (localize.go) to prune
// template instrumentation sites before synthesis.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"rtlrepair/internal/synth"
	"rtlrepair/internal/verilog"
)

// Severity grades a diagnostic.
type Severity int

// Severities. SevError marks conditions that prevent elaboration.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Rule identifiers, stable across releases (rtllint output and tests
// key on them).
const (
	RuleMultiDriven      = "multi-driven"
	RuleUndriven         = "undriven"
	RuleUnused           = "unused"
	RuleUndeclared       = "undeclared"
	RuleCombLoop         = "comb-loop"
	RuleWidthMismatch    = "width-mismatch"
	RuleCaseIncomplete   = "case-incomplete"
	RuleCaseOverlap      = "case-overlap"
	RuleDeadBranch       = "dead-branch"
	RuleAsyncReset       = "async-reset"
	RuleMixedSensitivity = "mixed-sensitivity"
	RuleSensIncomplete   = "sens-incomplete"
	RuleOutOfRange       = "out-of-range"
	RuleNotSynthesizable = "not-synthesizable"
	// Fact-driven rules (absfacts.go): justified by abstract-reachability
	// invariants over the elaborated transition system rather than by
	// syntactic constant folding. Their diagnostics carry Explain lines
	// (rtllint -explain) listing the abstract facts behind the verdict.
	RuleConstNet       = "const-net"
	RuleFactDeadBranch = "fact-dead-branch"
	RuleFactDeadArm    = "fact-unreachable-arm"
)

// Diagnostic is one finding of the analysis engine.
type Diagnostic struct {
	Rule     string      `json:"rule"`
	Severity Severity    `json:"severity"`
	Pos      verilog.Pos `json:"pos"`
	Signal   string      `json:"signal,omitempty"`
	Msg      string      `json:"message"`
	// Explain holds the justification chain for fact-driven rules: one
	// line per abstract fact the verdict rests on (rtllint -explain).
	Explain []string `json:"explain,omitempty"`
}

func (d Diagnostic) String() string {
	sig := ""
	if d.Signal != "" {
		sig = fmt.Sprintf(" [%s]", d.Signal)
	}
	return fmt.Sprintf("%v: %s: %s: %s%s", d.Pos, d.Severity, d.Rule, d.Msg, sig)
}

// Report is the ordered diagnostic list of one analysis run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

func (r *Report) add(d Diagnostic) { r.Diagnostics = append(r.Diagnostics, d) }

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// ByRule returns the diagnostics for one rule.
func (r *Report) ByRule(rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// FlaggedSignals returns the set of signals any diagnostic names.
func (r *Report) FlaggedSignals() map[string]bool {
	out := map[string]bool{}
	for _, d := range r.Diagnostics {
		if d.Signal != "" {
			out[d.Signal] = true
		}
	}
	return out
}

// Sort orders diagnostics by position, then rule, then signal, making
// reports deterministic.
func (r *Report) Sort() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Signal < b.Signal
	})
}

// Options configures an analysis run.
type Options struct {
	// Lib provides definitions for instantiated modules.
	Lib map[string]*verilog.Module
	// Facts enables the abstract-interpretation diagnostics
	// (const-net, fact-dead-branch, fact-unreachable-arm): a second
	// elaboration plus a reachability fixpoint over the transition
	// system. rtllint turns it on; the repair frontend leaves it off —
	// repair doesn't consume these diagnostics and the fixpoint would
	// tax every core.Repair call.
	Facts bool
}

// analyzer carries the shared pass state: the flattened module, its
// declaration-level info and its dependency graph.
type analyzer struct {
	m      *verilog.Module
	static *synth.StaticInfo
	deps   *synth.DepGraph
	report *Report
	// loopVars holds for-loop induction variables of the pre-unroll
	// design. Unrolling eliminates their uses, leaving a dead
	// declaration that must not be reported as undriven/unused.
	loopVars map[string]bool
}

// Analyze runs every pass over the design and returns the diagnostics.
// The input module is not modified. Analysis never fails: designs the
// frontend cannot even flatten yield a single not-synthesizable error.
func Analyze(m *verilog.Module, opts Options) *Report {
	r := &Report{}
	flat, err := synth.Flatten(m, opts.Lib)
	if err != nil {
		r.add(Diagnostic{Rule: RuleNotSynthesizable, Severity: SevError, Pos: m.Pos, Msg: err.Error()})
		return r
	}
	static, err := synth.Static(flat)
	if err != nil {
		r.add(Diagnostic{Rule: RuleNotSynthesizable, Severity: SevError, Pos: m.Pos, Msg: err.Error()})
		return r
	}
	loops := map[string]bool{}
	forLoopVars(m, loops)
	for _, lm := range opts.Lib {
		forLoopVars(lm, loops)
	}
	a := &analyzer{m: flat, static: static, deps: synth.Deps(flat), report: r, loopVars: loops}
	a.driverPass()
	a.combLoopPass()
	a.widthPass()
	a.casePass()
	a.resetPass()
	a.sensPass()
	if opts.Facts {
		a.absFactsPass()
	}
	r.Sort()
	return r
}

// errf / warnf append diagnostics.
func (a *analyzer) errf(rule string, pos verilog.Pos, signal, format string, args ...any) {
	a.report.add(Diagnostic{Rule: rule, Severity: SevError, Pos: pos, Signal: signal, Msg: fmt.Sprintf(format, args...)})
}

func (a *analyzer) warnf(rule string, pos verilog.Pos, signal, format string, args ...any) {
	a.report.add(Diagnostic{Rule: rule, Severity: SevWarning, Pos: pos, Signal: signal, Msg: fmt.Sprintf(format, args...)})
}

// isParam reports whether a name is a parameter or localparam.
func (a *analyzer) isParam(name string) bool {
	_, ok := a.static.Params[name]
	return ok
}

// isLoopVar reports whether a flattened-design name is a for-loop
// induction variable. Flattening prefixes submodule signals with
// "<instname>__", so suffix matches count too.
func (a *analyzer) isLoopVar(name string) bool {
	if a.loopVars[name] {
		return true
	}
	for v := range a.loopVars {
		if strings.HasSuffix(name, "__"+v) {
			return true
		}
	}
	return false
}

// forLoopVars collects the for-loop induction variable names of a
// module's processes into vars.
func forLoopVars(m *verilog.Module, vars map[string]bool) {
	var rec func(s verilog.Stmt)
	rec = func(s verilog.Stmt) {
		switch s := s.(type) {
		case *verilog.Block:
			for _, inner := range s.Stmts {
				rec(inner)
			}
		case *verilog.If:
			rec(s.Then)
			if s.Else != nil {
				rec(s.Else)
			}
		case *verilog.Case:
			for _, item := range s.Items {
				rec(item.Body)
			}
		case *verilog.For:
			vars[s.Var] = true
			rec(s.Body)
		}
	}
	for _, it := range m.Items {
		switch it := it.(type) {
		case *verilog.Always:
			rec(it.Body)
		case *verilog.Initial:
			rec(it.Body)
		}
	}
}

// declOf returns the declaration of a signal.
func (a *analyzer) declOf(name string) (synth.SigDecl, bool) {
	d, ok := a.static.Signals[name]
	return d, ok
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
