package sat

import (
	"fmt"
)

// This file implements DRUP proof logging and a forward RUP checker, so
// every Unsat verdict of the CDCL solver can carry an independently
// machine-checked certificate. The solver (when proof logging is
// enabled) records three kinds of steps in order:
//
//   - original clause additions (axioms, logged verbatim as given to
//     AddClause, before any solver-side normalization);
//   - learned clause additions (from first-UIP conflict analysis,
//     including learned units), each of which must have the RUP
//     property — reverse unit propagation — with respect to the active
//     clause database at the time it was derived;
//   - deletions (from reduceDB garbage collection).
//
// The checker replays the log forward with its own two-watched-literal
// unit propagation, verifying the RUP property of every learned clause.
// An Unsat answer is certified by checking that the final conflict
// clause is RUP against the resulting database: the empty clause for an
// unconditional Unsat, or the clause ¬a₁ ∨ … ∨ ¬aₙ over the Solve call's
// assumptions for an assumption-relative Unsat. Soundness rests only on
// the checker's propagation, not on any solver internals: if the check
// passes, the axioms (plus assumptions) are genuinely unsatisfiable.

// StepKind discriminates proof log entries.
type StepKind uint8

// Proof step kinds.
const (
	// StepOrig is an input clause (axiom); the checker trusts it.
	StepOrig StepKind = iota
	// StepLearn is a derived clause; the checker verifies it is RUP.
	StepLearn
	// StepDelete removes a clause from the active database.
	StepDelete
)

// ProofStep is one entry of a DRUP proof log.
type ProofStep struct {
	Kind StepKind
	Lits []Lit
}

// Proof is an in-memory DRUP proof log: an ordered interleaving of
// axiom additions, learned-clause additions and deletions. It grows
// monotonically across incremental Solve calls; a Checker consumes it
// lazily, so certifying a sequence of Unsat answers costs one forward
// pass over the log overall, not one pass per answer.
type Proof struct {
	Steps []ProofStep
}

// NumLearned counts learned-clause additions in the log.
func (p *Proof) NumLearned() int {
	n := 0
	for _, st := range p.Steps {
		if st.Kind == StepLearn {
			n++
		}
	}
	return n
}

func (p *Proof) add(kind StepKind, lits []Lit) {
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	p.Steps = append(p.Steps, ProofStep{Kind: kind, Lits: cp})
}

// StartProof enables DRUP proof logging on the solver and returns the
// log. It must be called before clauses are added: clauses already in
// the solver are snapshotted into the log as axioms so the checker's
// database matches, but learned clauses derived before logging began
// cannot be certified. Logging cannot be disabled once started.
func (s *Solver) StartProof() *Proof {
	if s.proof != nil {
		return s.proof
	}
	s.proof = &Proof{}
	for _, c := range s.clauses {
		s.proof.add(StepOrig, c.lits)
	}
	// Root-level facts (from unit AddClause calls) are stored on the
	// trail, not as clauses.
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			s.proof.add(StepOrig, []Lit{l})
		}
	}
	// Clauses learned before logging started are axioms to the checker.
	for _, c := range s.learnts {
		s.proof.add(StepOrig, c.lits)
	}
	return s.proof
}

// Proof returns the proof log, or nil when logging is not enabled.
func (s *Solver) Proof() *Proof { return s.proof }

// ---------------------------------------------------------------------
// Forward RUP checker.

// checkerClause is a clause in the checker's database. Watches point at
// lits[0] and lits[1]; unit clauses are applied directly to the trail.
type checkerClause struct {
	lits    []Lit
	deleted bool
}

// Checker verifies a DRUP proof log by forward replay. It maintains its
// own assignment (the unit-propagation fixed point of the active
// database) and two-watched-literal scheme, fully independent of the
// solver that produced the log.
type Checker struct {
	proof   *Proof
	cursor  int // next unconsumed proof step
	clauses []*checkerClause
	// byKey groups active clauses by a cheap key for deletion lookup.
	byKey   map[string][]*checkerClause
	watches map[Lit][]*checkerClause
	assigns map[int]lbool
	trail   []Lit
	qhead   int
	// conflict is true once the active database propagates to a
	// contradiction at the root level: every clause is trivially RUP.
	conflict bool
	// Stats.
	checked int // learned clauses verified
}

// NewChecker returns a checker that will consume the given proof log.
func NewChecker(p *Proof) *Checker {
	return &Checker{
		proof:   p,
		byKey:   map[string][]*checkerClause{},
		watches: map[Lit][]*checkerClause{},
		assigns: map[int]lbool{},
	}
}

// Checked reports how many learned clauses have been RUP-verified.
func (c *Checker) Checked() int { return c.checked }

func clauseKey(lits []Lit) string {
	// Order-insensitive key: sorted literal dump. Clause widths are
	// small; an insertion sort avoids allocation churn.
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	b := make([]byte, 0, len(cp)*3)
	for _, l := range cp {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func (c *Checker) value(l Lit) lbool {
	a, ok := c.assigns[l.Var()]
	if !ok || a == lUndef {
		return lUndef
	}
	if l.Neg() {
		return a.neg()
	}
	return a
}

func (c *Checker) assign(l Lit) {
	if l.Neg() {
		c.assigns[l.Var()] = lFalse
	} else {
		c.assigns[l.Var()] = lTrue
	}
	c.trail = append(c.trail, l)
}

// propagate runs unit propagation to a fixed point. It returns false on
// conflict.
func (c *Checker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		ws := c.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			cl := ws[i]
			if cl.deleted {
				continue
			}
			if cl.lits[0] == p.Not() {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if c.value(first) == lTrue {
				kept = append(kept, cl)
				continue
			}
			found := false
			for k := 2; k < len(cl.lits); k++ {
				if c.value(cl.lits[k]) != lFalse {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watches[cl.lits[1].Not()] = append(c.watches[cl.lits[1].Not()], cl)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, cl)
			if c.value(first) == lFalse {
				kept = append(kept, ws[i+1:]...)
				c.watches[p] = kept
				c.qhead = len(c.trail)
				return false
			}
			c.assign(first)
		}
		c.watches[p] = kept
	}
	return true
}

// normClause removes duplicate literals and detects tautologies
// (returning ok=false for them). Axioms are logged verbatim, so they can
// carry duplicates; a duplicate would break the two-watched-literal
// scheme below (both watches landing on one literal suppresses unit
// propagation), and a tautology constrains nothing.
func normClause(lits []Lit) (norm []Lit, ok bool) {
	norm = make([]Lit, 0, len(lits))
	for _, l := range lits {
		dup := false
		for _, o := range norm {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return nil, false
			}
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	return norm, true
}

// addClause inserts a clause into the active database and propagates
// any immediate consequence. A root-level conflict flips c.conflict.
func (c *Checker) addClause(lits []Lit) {
	if c.conflict {
		return
	}
	lits, ok := normClause(lits)
	if !ok {
		return // tautology: vacuously true, adds no propagation power
	}
	cl := &checkerClause{lits: lits}
	key := clauseKey(lits)
	c.byKey[key] = append(c.byKey[key], cl)
	// Place two unassigned-or-true literals first for watching.
	j := 0
	for i, l := range cl.lits {
		if c.value(l) != lFalse {
			cl.lits[i], cl.lits[j] = cl.lits[j], cl.lits[i]
			j++
			if j == 2 {
				break
			}
		}
	}
	switch {
	case len(cl.lits) == 0 || j == 0:
		// Empty or fully falsified at root: contradiction.
		c.conflict = true
		return
	case len(cl.lits) == 1 || j == 1:
		// Unit (or effectively unit): assign and propagate.
		if c.value(cl.lits[0]) == lUndef {
			c.assign(cl.lits[0])
		}
		if len(cl.lits) >= 2 {
			c.watch(cl)
		}
		if !c.propagate() {
			c.conflict = true
		}
	default:
		c.watch(cl)
	}
}

func (c *Checker) watch(cl *checkerClause) {
	c.watches[cl.lits[0].Not()] = append(c.watches[cl.lits[0].Not()], cl)
	c.watches[cl.lits[1].Not()] = append(c.watches[cl.lits[1].Not()], cl)
}

func (c *Checker) deleteClause(lits []Lit) {
	lits, ok := normClause(lits)
	if !ok {
		return // tautologies were never added
	}
	key := clauseKey(lits)
	list := c.byKey[key]
	for i, cl := range list {
		if !cl.deleted {
			cl.deleted = true
			c.byKey[key] = append(list[:i], list[i+1:]...)
			return
		}
	}
	// Deleting an unknown clause is harmless for UNSAT soundness (it
	// only ever weakens the database); ignore.
}

// isRUP checks the reverse-unit-propagation property of a clause:
// asserting the negation of every literal on top of the current fixed
// point must propagate to a conflict. The trail is rewound afterwards.
func (c *Checker) isRUP(lits []Lit) bool {
	if c.conflict {
		return true
	}
	mark := len(c.trail)
	qmark := c.qhead
	ok := false
	for _, l := range lits {
		switch c.value(l) {
		case lTrue:
			// A literal already true at root: the clause is subsumed by
			// the fixed point, trivially redundant.
			ok = true
		case lFalse:
			continue
		default:
			c.assign(l.Not())
		}
	}
	if !ok {
		ok = !c.propagate()
	}
	// Rewind.
	for i := len(c.trail) - 1; i >= mark; i-- {
		delete(c.assigns, c.trail[i].Var())
	}
	c.trail = c.trail[:mark]
	c.qhead = qmark
	return ok
}

// advance consumes all unconsumed proof steps, verifying each learned
// clause's RUP property before admitting it to the database.
func (c *Checker) advance() error {
	for ; c.cursor < len(c.proof.Steps); c.cursor++ {
		st := c.proof.Steps[c.cursor]
		switch st.Kind {
		case StepOrig:
			c.addClause(st.Lits)
		case StepLearn:
			if !c.isRUP(st.Lits) {
				return fmt.Errorf("sat: proof step %d: learned clause %v is not RUP", c.cursor, st.Lits)
			}
			c.checked++
			c.addClause(st.Lits)
		case StepDelete:
			c.deleteClause(st.Lits)
		}
	}
	return nil
}

// CheckUnsat verifies an Unsat verdict: it replays any new proof steps
// (checking every learned clause) and then checks that the clause
// ¬a₁ ∨ … ∨ ¬aₙ over the Solve call's assumptions is RUP against the
// active database. For an unconditional Unsat pass no assumptions; the
// target is then the empty clause. A nil return means the certificate
// is valid.
func (c *Checker) CheckUnsat(assumptions []Lit) error {
	if err := c.advance(); err != nil {
		return err
	}
	target := make([]Lit, len(assumptions))
	for i, a := range assumptions {
		target[i] = a.Not()
	}
	if !c.isRUP(target) {
		return fmt.Errorf("sat: final clause %v is not RUP: unsat verdict not certified", target)
	}
	return nil
}

// CheckProof verifies a complete proof log against an Unsat verdict in
// one shot (a convenience wrapper over NewChecker + CheckUnsat).
func CheckProof(p *Proof, assumptions []Lit) error {
	return NewChecker(p).CheckUnsat(assumptions)
}
