package sat

import (
	"testing"
	"time"

	"rtlrepair/internal/obs"
)

// BenchmarkNilTracer prices the observability instrumentation in its
// disabled (default) state. "calls" is the per-Solve instrumentation
// sequence against a nil tracer; "solve" is a real CDCL search with the
// zero Scope, i.e. exactly what every solver pays when no -trace-out is
// given; "solve-traced" is the same search with tracing on, for
// comparison.
func BenchmarkNilTracer(b *testing.B) {
	b.Run("calls", func(b *testing.B) {
		var sc obs.Scope
		for i := 0; i < b.N; i++ {
			span := sc.Tracer.Start(sc.Span, "sat.solve")
			span.SetInt("assumptions", 0)
			sc.Metrics.Add("sat.restarts", 1)
			span.End()
		}
	})
	bench := func(b *testing.B, sc obs.Scope) {
		for i := 0; i < b.N; i++ {
			s := New()
			s.Obs = sc
			pigeonhole(s, 7, 6)
			if st, err := s.Solve(); err != nil || st != Unsat {
				b.Fatalf("solve = %v, %v", st, err)
			}
		}
	}
	b.Run("solve", func(b *testing.B) { bench(b, obs.Scope{}) })
	b.Run("solve-traced", func(b *testing.B) {
		bench(b, obs.Scope{Tracer: obs.New(), Metrics: obs.NewRegistry()})
	})
}

// TestNilTracerOverheadBudget pins the disabled-instrumentation cost on
// the solver hot path below 2% of solve time, with generous headroom:
// the instrumentation adds one nil-tracer span sequence per Solve call
// and one nil-registry Add per restart, so its total cost is
// (restarts+1) × the measured per-call cost. On any plausible hardware
// that is thousands of times under the budget; the assertion only
// catches a regression that puts real work (allocation, locking) on the
// disabled path.
func TestNilTracerOverheadBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6)
	startSolve := time.Now()
	st, err := s.Solve()
	solveTime := time.Since(startSolve)
	if err != nil || st != Unsat {
		t.Fatalf("solve = %v, %v", st, err)
	}
	restarts := s.Statistics().Restarts

	// Price one disabled instrumentation sequence (span start/attr/end +
	// metrics add) against a nil tracer and registry.
	var sc obs.Scope
	const reps = 1_000_000
	startCalls := time.Now()
	for i := 0; i < reps; i++ {
		span := sc.Tracer.Start(sc.Span, "sat.solve")
		span.SetInt("assumptions", 0)
		sc.Metrics.Add("sat.restarts", 1)
		span.End()
	}
	perCall := time.Since(startCalls) / reps

	overhead := time.Duration(restarts+1) * perCall
	budget := solveTime / 50 // 2%
	t.Logf("solve %v, %d restarts, per-call %v, modeled overhead %v (budget %v)",
		solveTime, restarts, perCall, overhead, budget)
	if overhead > budget {
		t.Fatalf("disabled-tracer overhead %v exceeds 2%% of solve time %v", overhead, solveTime)
	}
}
