package lint

import (
	"strings"
	"testing"

	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/verilog"
)

func preprocess(t *testing.T, src string) (*verilog.Module, []Fix) {
	t.Helper()
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	out, fixes, err := Preprocess(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out, fixes
}

func TestFixBlockingInClockedBlock(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input clk, input d, output reg q);
always @(posedge clk) q = d;
endmodule`)
	if len(fixes) != 1 || fixes[0].Kind != FixAssignKind {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(verilog.Print(out), "q <= d") {
		t.Fatalf("not converted:\n%s", verilog.Print(out))
	}
}

func TestFixNonBlockingInCombBlock(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input a, b, output reg y);
always @(*) y <= a & b;
endmodule`)
	if len(fixes) != 1 || fixes[0].Kind != FixAssignKind {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(verilog.Print(out), "y = a & b") {
		t.Fatalf("not converted:\n%s", verilog.Print(out))
	}
}

func TestFixIncompleteSensitivityList(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input a, b, output reg y);
always @(a) y = a & b;
endmodule`)
	if len(fixes) != 1 || fixes[0].Kind != FixSensitivity {
		t.Fatalf("fixes = %v", fixes)
	}
	if !strings.Contains(verilog.Print(out), "@(*)") {
		t.Fatalf("sense list not fixed:\n%s", verilog.Print(out))
	}
	// Result must elaborate cleanly.
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("fixed module does not synthesize: %v", err)
	}
}

func TestCompleteSenseListUntouched(t *testing.T) {
	_, fixes := preprocess(t, `
module m(input a, b, output reg y);
always @(a or b) y = a & b;
endmodule`)
	if len(fixes) != 0 {
		t.Fatalf("unexpected fixes: %v", fixes)
	}
}

func TestFixLatch(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input en, input d, output reg q);
always @(*) begin
  if (en) q = d;
end
endmodule`)
	found := false
	for _, f := range fixes {
		if f.Kind == FixLatchDefault && f.Signal == "q" {
			found = true
		}
	}
	if !found {
		t.Fatalf("latch fix missing: %v", fixes)
	}
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("latch fix did not synthesize: %v\n%s", err, verilog.Print(out))
	}
	// Default must come before the conditional assignment.
	src := verilog.Print(out)
	if strings.Index(src, "q = 1'b0") > strings.Index(src, "if (en)") {
		t.Fatalf("default not prepended:\n%s", src)
	}
}

func TestFixLatchInCase(t *testing.T) {
	// fsm-style bug: a case statement without default and a missing arm
	// assignment infers a latch on next_state.
	out, fixes := preprocess(t, `
module fsm(input [1:0] state, output reg [1:0] next_state);
always @(*) begin
  case (state)
    2'b00: next_state = 2'b01;
    2'b01: next_state = 2'b10;
  endcase
end
endmodule`)
	if len(fixes) == 0 {
		t.Fatal("expected a latch fix")
	}
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("fixed module does not synthesize: %v", err)
	}
}

func TestLevelClockFeedbackBecomesCombLoop(t *testing.T) {
	// counter_w1 pattern: lint completes the sense list, but the design
	// then fails synthesis with a comb loop — RTL-Repair correctly
	// cannot handle it (§6.2, Figure 8).
	m, err := verilog.ParseModule(`
module c(input clk, input en, output reg [3:0] q);
always @(clk) begin
  if (en) q <= q + 1;
end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Preprocess(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = synth.Elaborate(smt.NewContext(), out, synth.Options{})
	if err == nil {
		t.Fatal("expected synthesis to fail after preprocessing")
	}
}

func TestPreprocessDoesNotMutateInput(t *testing.T) {
	m, err := verilog.ParseModule(`
module m(input clk, input d, output reg q);
always @(posedge clk) q = d;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	before := verilog.Print(m)
	if _, _, err := Preprocess(m, nil); err != nil {
		t.Fatal(err)
	}
	if verilog.Print(m) != before {
		t.Fatal("Preprocess mutated its input")
	}
}

func TestCleanDesignNoFixes(t *testing.T) {
	_, fixes := preprocess(t, `
module m(input clk, input reset, input d, output reg q);
always @(posedge clk) begin
  if (reset) q <= 1'b0;
  else q <= d;
end
endmodule`)
	if len(fixes) != 0 {
		t.Fatalf("unexpected fixes on clean design: %v", fixes)
	}
}

func TestFixMultipleLatchesAcrossBlocks(t *testing.T) {
	out, fixes := preprocess(t, `
module ml(input en1, input en2, input [3:0] d, output reg [3:0] a, output reg [3:0] b);
always @(*) begin
  if (en1) a = d;
end
always @(*) begin
  if (en2) b = ~d;
end
endmodule`)
	latchFixes := 0
	for _, f := range fixes {
		if f.Kind == FixLatchDefault {
			latchFixes++
		}
	}
	if latchFixes != 2 {
		t.Fatalf("latch fixes = %d, want 2", latchFixes)
	}
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("fixed module does not synthesize: %v", err)
	}
}

func TestFixKindStrings(t *testing.T) {
	for k, want := range map[FixKind]string{
		FixAssignKind:   "assignment-kind",
		FixSensitivity:  "sensitivity-list",
		FixLatchDefault: "latch-default",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestSenseListForLoopVarNotMissing(t *testing.T) {
	// The induction variable is read by the loop condition and step but
	// cannot produce an event; a list that covers the real inputs is
	// complete and must stay untouched.
	out, fixes := preprocess(t, `
module m(input [3:0] a, output reg [3:0] y);
integer i;
always @(a) begin
  for (i = 0; i < 4; i = i + 1)
    y[i] = a[i];
end
endmodule`)
	for _, f := range fixes {
		if f.Kind == FixSensitivity {
			t.Fatalf("loop variable treated as missing sense: %v\n%s", fixes, verilog.Print(out))
		}
	}
}

func TestSenseListParamNotMissing(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input [1:0] a, output reg y);
parameter MODE = 2'b10;
always @(a) y = (a == MODE);
endmodule`)
	for _, f := range fixes {
		if f.Kind == FixSensitivity {
			t.Fatalf("parameter treated as missing sense: %v\n%s", fixes, verilog.Print(out))
		}
	}
}

func TestSenseListNestedCaseIfReadsFixed(t *testing.T) {
	// A read buried in a nested case arm / if branch still triggers the
	// @(*) fix when it is not listed.
	out, fixes := preprocess(t, `
module m(input [1:0] s, input a, input b, output reg y);
always @(s or a) begin
  y = 1'b0;
  case (s)
    2'b00: begin
      if (a) y = b;
    end
    default: y = a;
  endcase
end
endmodule`)
	found := false
	for _, f := range fixes {
		if f.Kind == FixSensitivity {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested read of b not detected: %v", fixes)
	}
	if !strings.Contains(verilog.Print(out), "@(*)") {
		t.Fatalf("sense list not replaced:\n%s", verilog.Print(out))
	}
}

func TestFixLatchOnIndexedTarget(t *testing.T) {
	// The latch default must be found and inserted even when the signal
	// is only ever assigned through a bit select.
	out, fixes := preprocess(t, `
module m(input [1:0] a, input en, output reg [1:0] y);
always @(*) begin
  if (en) begin
    y[0] = a[0];
    y[1] = a[1];
  end
end
endmodule`)
	found := false
	for _, f := range fixes {
		if f.Kind == FixLatchDefault && f.Signal == "y" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no latch default for indexed target: %v\n%s", fixes, verilog.Print(out))
	}
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("fixed design still fails elaboration: %v\n%s", err, verilog.Print(out))
	}
}

func TestFixLatchOnConcatTarget(t *testing.T) {
	out, fixes := preprocess(t, `
module m(input [1:0] a, input en, output reg hi, output reg lo);
always @(*) begin
  if (en) {hi, lo} = a;
end
endmodule`)
	byName := map[string]bool{}
	for _, f := range fixes {
		if f.Kind == FixLatchDefault {
			byName[f.Signal] = true
		}
	}
	if !byName["hi"] || !byName["lo"] {
		t.Fatalf("concat-part latches not fixed: %v\n%s", fixes, verilog.Print(out))
	}
	if _, _, err := synth.Elaborate(smt.NewContext(), out, synth.Options{}); err != nil {
		t.Fatalf("fixed design still fails elaboration: %v\n%s", err, verilog.Print(out))
	}
}

func TestPreprocessWithReportDiagnostics(t *testing.T) {
	m, err := verilog.ParseModule(`
module m(input a, output wire y);
  assign y = a;
  assign y = ~a;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, report, err := PreprocessWithReport(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("report is nil")
	}
	if len(report.Errors()) == 0 {
		t.Fatalf("multiply-driven design must produce an error diagnostic:\n%+v", report.Diagnostics)
	}
}
