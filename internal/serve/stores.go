package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"rtlrepair/internal/core"
	"rtlrepair/internal/lint"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/verilog"
)

// The queue/worker/cache layers of the server are seams, not
// hard-wired structures: a Config may replace any of them. The
// in-process defaults (bounded channel queue, LRU tiers) reproduce the
// single-node behaviour; internal/fleet composes the same server with
// a write-ahead-logged queue front and stores backed by a shared
// content-addressed filesystem, which is how one process becomes a
// cluster node. See DESIGN.md "Fleet".

// JobQueue buffers accepted-but-not-running jobs between admission
// (Submit) and the worker pool. Push is called under the server's
// admission lock; Jobs feeds the workers and must be closed exactly
// once by Close, after which Push must return false.
type JobQueue interface {
	// Push enqueues a job; false means the queue is at capacity and the
	// submission is rejected with ErrQueueFull.
	Push(j *Job) bool
	// Jobs is the worker feed. The channel is closed by Close.
	Jobs() <-chan *Job
	// Len and Cap report current depth and capacity.
	Len() int
	Cap() int
	// Close stops the queue: workers drain what remains and exit.
	Close()
}

// chanQueue is the default in-process JobQueue: a bounded channel.
type chanQueue struct{ ch chan *Job }

// NewChanQueue returns the default bounded-channel job queue.
func NewChanQueue(depth int) JobQueue {
	return &chanQueue{ch: make(chan *Job, depth)}
}

func (q *chanQueue) Push(j *Job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

func (q *chanQueue) Jobs() <-chan *Job { return q.ch }
func (q *chanQueue) Len() int          { return len(q.ch) }
func (q *chanQueue) Cap() int          { return cap(q.ch) }
func (q *chanQueue) Close()            { close(q.ch) }

// ResultStore is the exact-request result tier: terminal RepairResults
// keyed by the SHA-256 result key. Implementations must be safe for
// concurrent use; stored results are immutable and shared by pointer.
type ResultStore interface {
	GetResult(key string) (*RepairResult, bool)
	PutResult(key string, rr *RepairResult)
}

// Artifact is one cached frontend: the parsed request plus its
// preprocess+elaborate result, shared read-only across jobs.
type Artifact struct {
	parsed *parsedRequest
	// FE is the frozen frontend artifact (never nil; a failed frontend
	// carries its CannotRepair reason).
	FE *core.Frontend
}

// ArtifactStore is the frontend-artifact tier: process-local Frontend
// values keyed by the SHA-256 artifact key.
type ArtifactStore interface {
	GetArtifact(key string) (*Artifact, bool)
	PutArtifact(key string, a *Artifact)
}

// BlobStore is a content-addressed byte store shared across processes
// (internal/fleet's filesystem CAS implements it). Keys are the same
// SHA-256 hex strings the in-memory tiers use; values are immutable
// once written.
type BlobStore interface {
	GetBlob(key string) ([]byte, bool)
	PutBlob(key string, blob []byte) error
}

// lruResults adapts the in-memory LRU to ResultStore.
type lruResults struct{ c *lruCache[*RepairResult] }

// NewLRUResultStore returns the default in-memory result tier
// (max <= 0 disables it).
func NewLRUResultStore(max int, metrics *obs.Registry) ResultStore {
	return &lruResults{c: newLRU[*RepairResult]("result", max, metrics)}
}

func (s *lruResults) GetResult(key string) (*RepairResult, bool) { return s.c.Get(key) }
func (s *lruResults) PutResult(key string, rr *RepairResult)     { s.c.Put(key, rr) }

// lruArtifacts adapts the in-memory LRU to ArtifactStore.
type lruArtifacts struct{ c *lruCache[*Artifact] }

// NewLRUArtifactStore returns the default in-memory artifact tier
// (max <= 0 disables it).
func NewLRUArtifactStore(max int, metrics *obs.Registry) ArtifactStore {
	return &lruArtifacts{c: newLRU[*Artifact]("artifact", max, metrics)}
}

func (s *lruArtifacts) GetArtifact(key string) (*Artifact, bool) { return s.c.Get(key) }
func (s *lruArtifacts) PutArtifact(key string, a *Artifact)      { s.c.Put(key, a) }

// sharedResults layers a cross-process blob store under the in-memory
// tier: gets read through to the CAS on a local miss (warming the LRU),
// puts write through, so every node in a fleet sees every node's
// results — and a restarted node comes back warm.
type sharedResults struct {
	mem     ResultStore
	blobs   BlobStore
	metrics *obs.Registry
}

// NewSharedResultStore composes the in-memory tier with a shared blob
// store. CAS write failures are counted (serve.cas.result.put_errors),
// not fatal: the in-memory tier still serves this process.
func NewSharedResultStore(mem ResultStore, blobs BlobStore, metrics *obs.Registry) ResultStore {
	return &sharedResults{mem: mem, blobs: blobs, metrics: metrics}
}

func (s *sharedResults) GetResult(key string) (*RepairResult, bool) {
	if rr, ok := s.mem.GetResult(key); ok {
		return rr, true
	}
	blob, ok := s.blobs.GetBlob(key)
	if !ok {
		return nil, false
	}
	var rr RepairResult
	if err := json.Unmarshal(blob, &rr); err != nil {
		s.metrics.Add("serve.cas.result.decode_errors", 1)
		return nil, false
	}
	s.metrics.Add("serve.cas.result.hits", 1)
	s.mem.PutResult(key, &rr)
	return &rr, true
}

func (s *sharedResults) PutResult(key string, rr *RepairResult) {
	s.mem.PutResult(key, rr)
	blob, err := json.Marshal(rr)
	if err == nil {
		err = s.blobs.PutBlob(key, blob)
	}
	if err != nil {
		s.metrics.Add("serve.cas.result.put_errors", 1)
	}
}

// artifactDoc is the serialized form of a frontend artifact in the
// shared blob store. The module source is the *preprocessed* design
// (printed), so a warm node skips the lint transform; the fix list and
// failure reason are carried verbatim because they are inputs to the
// repair verdict, and the analysis report plus elaboration are
// recomputed on rehydration — both are pure functions of the
// preprocessed module, so a warm frontend is byte-for-byte equivalent
// to a cold one (pinned by TestSharedArtifactWarmEqualsCold).
type artifactDoc struct {
	Version int      `json:"version"`
	Reason  string   `json:"reason,omitempty"`
	Fixed   string   `json:"fixed,omitempty"`
	Fixes   []docFix `json:"fixes,omitempty"`
}

type docFix struct {
	Kind   int    `json:"kind"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Signal string `json:"signal,omitempty"`
	Desc   string `json:"desc"`
}

const artifactDocVersion = 1

// encodeArtifact renders the shareable half of an artifact. The
// elaborated system itself is a process-local term DAG and never
// crosses the wire.
func encodeArtifact(a *Artifact) ([]byte, error) {
	doc := artifactDoc{Version: artifactDocVersion, Reason: a.FE.Reason}
	if a.FE.Fixed != nil {
		doc.Fixed = verilog.Print(a.FE.Fixed)
	}
	for _, f := range a.FE.Fixes {
		doc.Fixes = append(doc.Fixes, docFix{
			Kind: int(f.Kind), Line: f.Pos.Line, Col: f.Pos.Col,
			Signal: f.Signal, Desc: f.Desc,
		})
	}
	return json.Marshal(doc)
}

// decodeArtifact rebuilds a frontend from a shared artifact doc plus
// the requester's own parsed request (which supplies the library and
// trace — preprocessing never rewrites library modules).
func decodeArtifact(blob []byte, parsed *parsedRequest) (*Artifact, error) {
	var doc artifactDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, err
	}
	if doc.Version != artifactDocVersion {
		return nil, fmt.Errorf("artifact doc version %d", doc.Version)
	}
	fixes := make([]lint.Fix, 0, len(doc.Fixes))
	for _, f := range doc.Fixes {
		fixes = append(fixes, lint.Fix{
			Kind: lint.FixKind(f.Kind), Pos: verilog.Pos{Line: f.Line, Col: f.Col},
			Signal: f.Signal, Desc: f.Desc,
		})
	}
	var fixed *verilog.Module
	if doc.Fixed != "" {
		mods, err := verilog.Parse(doc.Fixed)
		if err != nil || len(mods) != 1 {
			return nil, fmt.Errorf("artifact doc source: %v", err)
		}
		fixed = mods[0]
	}
	fe := core.RehydrateFrontend(fixed, parsed.lib, fixes, doc.Reason)
	return &Artifact{parsed: parsed, FE: fe}, nil
}

// sharedArtifacts layers the blob store under the in-memory artifact
// tier. Because a Frontend is a process-local object graph, the CAS
// holds its serializable inputs (preprocessed source, fixes, reason)
// and a warm get re-elaborates locally — skipping the lint transform
// and, more importantly, surviving restarts and crossing nodes.
type sharedArtifacts struct {
	mem     ArtifactStore
	blobs   BlobStore
	metrics *obs.Registry
}

// NewSharedArtifactStore composes the in-memory artifact tier with a
// shared blob store.
func NewSharedArtifactStore(mem ArtifactStore, blobs BlobStore, metrics *obs.Registry) ArtifactStore {
	return &sharedArtifacts{mem: mem, blobs: blobs, metrics: metrics}
}

func (s *sharedArtifacts) GetArtifact(key string) (*Artifact, bool) {
	if a, ok := s.mem.GetArtifact(key); ok {
		return a, true
	}
	return nil, false
}

// getWarm is the CAS read path; it needs the requester's parsed request
// to rebind the library, so the server calls it from artifactFor rather
// than through the narrow ArtifactStore interface.
func (s *sharedArtifacts) getWarm(key string, parsed *parsedRequest) (*Artifact, bool) {
	blob, ok := s.blobs.GetBlob(key)
	if !ok {
		return nil, false
	}
	a, err := decodeArtifact(blob, parsed)
	if err != nil {
		s.metrics.Add("serve.cas.artifact.decode_errors", 1)
		return nil, false
	}
	s.metrics.Add("serve.cas.artifact.hits", 1)
	s.mem.PutArtifact(key, a)
	return a, true
}

func (s *sharedArtifacts) PutArtifact(key string, a *Artifact) {
	s.mem.PutArtifact(key, a)
	blob, err := encodeArtifact(a)
	if err == nil {
		err = s.blobs.PutBlob(key, blob)
	}
	if err != nil {
		s.metrics.Add("serve.cas.artifact.put_errors", 1)
	}
}

// ResultKey returns the content address of a full request: identical
// (source, trace, options) triples — and only those — share a key.
// Tenant and priority are routing metadata and deliberately excluded,
// so the same design submitted by two tenants shares cache entries.
// This is also the fleet shard key: internal/fleet's router rendezvous-
// hashes it across nodes.
func ResultKey(r *Request) string { return r.resultKey() }

// ArtifactKey returns the content address of a request's frontend
// artifact (trace-independent).
func ArtifactKey(r *Request) string { return r.artifactKey() }

// ValidPriority reports whether p names a known priority class.
func ValidPriority(p string) bool {
	switch strings.ToLower(p) {
	case "", PriorityInteractive, PriorityBatch:
		return true
	}
	return false
}

// Priority classes. Interactive (the default) is admitted until the
// queue is hard-full; batch is shed earlier (see fleet's admission
// controller), keeping latency headroom for interactive traffic.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)
