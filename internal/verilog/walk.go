package verilog

// LHSBaseNames returns the base signal names assigned by an lvalue of
// any supported shape: plain identifiers, bit selects, part selects and
// concatenations (possibly nested). Non-lvalue expressions yield nil.
func LHSBaseNames(lhs Expr) []string {
	switch l := lhs.(type) {
	case *Ident:
		return []string{l.Name}
	case *Index:
		return LHSBaseNames(l.X)
	case *PartSelect:
		return LHSBaseNames(l.X)
	case *Concat:
		var out []string
		for _, p := range l.Parts {
			out = append(out, LHSBaseNames(p)...)
		}
		return out
	}
	return nil
}

// AssignsWholeSignal reports whether an lvalue overwrites the named
// signal completely: only a plain identifier target does. Bit and part
// selects keep the other bits, so the previous value still matters.
func AssignsWholeSignal(lhs Expr, name string) bool {
	id, ok := lhs.(*Ident)
	return ok && id.Name == name
}

// WalkExpr calls f for e and every sub-expression, depth-first. If f
// returns false the walk does not descend into that expression.
func WalkExpr(e Expr, f func(Expr) bool) { walkExpr(e, f) }

// ExprReads adds the name of every identifier referenced by an
// expression to reads. For lvalue contexts use LHSIndexReads instead,
// which skips the assigned base signals.
func ExprReads(e Expr, reads map[string]bool) {
	walkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			reads[id.Name] = true
		}
		return true
	})
}

// LHSIndexReads adds the identifiers *read* by an lvalue — index and
// part-select bound expressions — to reads, without the assigned base
// signals themselves.
func LHSIndexReads(lhs Expr, reads map[string]bool) {
	switch l := lhs.(type) {
	case *Index:
		LHSIndexReads(l.X, reads)
		ExprReads(l.Idx, reads)
	case *PartSelect:
		LHSIndexReads(l.X, reads)
		ExprReads(l.MSB, reads)
		ExprReads(l.LSB, reads)
	case *Concat:
		for _, p := range l.Parts {
			LHSIndexReads(p, reads)
		}
	}
}
