package sat

// varHeap is a max-heap over variable activities used for VSIDS
// branching. It indexes positions so updates are O(log n).
type varHeap struct {
	activity *[]float64
	heap     []int
	pos      []int // var -> index in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.activity)[h.heap[a]] > (*h.activity)[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) insert(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) insertIfAbsent(v int) { h.insert(v) }

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
	}
}

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}
