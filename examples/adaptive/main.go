// The adaptive example demonstrates the adaptive windowing technique of
// §4.4 on a long-running testbench: a UART-style byte engine whose bug
// only manifests thousands of cycles into the trace. The basic
// synthesizer must unroll the whole trace; adaptive windowing repairs it
// from a handful of cycles around the failure.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/core"
	"rtlrepair/internal/eval"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

const goodEngine = `
module byte_engine(input clk, input rst, input go, input [7:0] data,
                   output reg [7:0] acc, output reg done);
reg [3:0] cnt;
reg busy;
always @(posedge clk) begin
  if (rst) begin
    acc <= 8'd0; cnt <= 4'd0; busy <= 1'b0; done <= 1'b0;
  end else begin
    done <= 1'b0;
    if (go && !busy) begin
      busy <= 1'b1;
      cnt <= 4'd0;
    end else if (busy) begin
      acc <= acc + data;
      cnt <= cnt + 4'd1;
      if (cnt == 4'd7) begin
        busy <= 1'b0;
        done <= 1'b1;
      end
    end
  end
end
endmodule`

func main() {
	// The bug: the accumulator adds data+1 instead of data.
	buggy := strings.Replace(goodEngine, "acc <= acc + data;", "acc <= acc + data + 8'd1;", 1)

	// Record a long testbench from the ground truth: thousands of idle
	// cycles, then activity near the end.
	gtMod, err := verilog.ParseModule(goodEngine)
	if err != nil {
		log.Fatal(err)
	}
	gtSys, _, err := synth.Elaborate(smt.NewContext(), gtMod, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ins := []trace.Signal{{Name: "rst", Width: 1}, {Name: "go", Width: 1}, {Name: "data", Width: 8}}
	outs := []trace.Signal{{Name: "acc", Width: 8}, {Name: "done", Width: 1}}
	var rows [][]bv.XBV
	rows = append(rows, []bv.XBV{bv.KU(1, 1), bv.KU(1, 0), bv.KU(8, 0)})
	for i := 0; i < 3000; i++ { // long idle stretch
		rows = append(rows, []bv.XBV{bv.KU(1, 0), bv.KU(1, 0), bv.KU(8, 0)})
	}
	for burst := 0; burst < 4; burst++ { // late activity reveals the bug
		rows = append(rows, []bv.XBV{bv.KU(1, 0), bv.KU(1, 1), bv.KU(8, uint64(17*burst+3))})
		for i := 0; i < 10; i++ {
			rows = append(rows, []bv.XBV{bv.KU(1, 0), bv.KU(1, 0), bv.KU(8, uint64(13*i+1))})
		}
	}
	cs := sim.NewCycleSim(gtSys, sim.KeepX, 0)
	tr := sim.RecordTrace(cs, ins, outs, rows)
	fmt.Printf("testbench length: %d cycles\n", tr.Len())

	buggyMod, err := verilog.ParseModule(buggy)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, basic bool) *core.Result {
		res := core.Repair(verilog.CloneModule(buggyMod), tr, core.Options{
			Policy:  sim.Randomize,
			Seed:    1,
			Timeout: 90 * time.Second,
			Basic:   basic,
		})
		fmt.Printf("%-22s status=%-15s time=%-10s changes=%d",
			label, res.Status, res.Duration.Round(time.Millisecond), res.Changes)
		if res.Status == core.StatusRepaired {
			fmt.Printf("  window=[-%d..+%d]", res.Window[0], res.Window[1])
		}
		fmt.Println()
		return res
	}

	fmt.Println("\n--- basic synthesizer (full unrolling, §4.3) ---")
	run("basic:", true)

	fmt.Println("\n--- adaptive windowing (§4.4) ---")
	res := run("windowed:", false)
	if res.Status == core.StatusRepaired {
		fmt.Println("\nrepair diff:")
		fmt.Print(eval.DiffLines(verilog.Print(buggyMod), verilog.Print(res.Repaired)))
	}
}
