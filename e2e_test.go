package rtlrepair_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineEndToEnd exercises the shipped binaries the way a user
// would: record a trace from a golden design with tracegen, break the
// design, repair it with rtlrepair, and cross-check the result with all
// three vsim backends and the bmc property checker.
func TestCommandLineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	for _, tool := range []string{"rtlrepair", "tracegen", "vsim", "bmc"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	golden := `
module gray(input clk, input rst, input en, output reg [3:0] cnt, output [3:0] gray, output ok);
assign gray = cnt ^ (cnt >> 1);
assign ok = 1'b1;
always @(posedge clk) begin
  if (rst) cnt <= 4'd0;
  else if (en) cnt <= cnt + 4'd1;
end
endmodule`
	goldenPath := filepath.Join(dir, "golden.v")
	if err := os.WriteFile(goldenPath, []byte(golden), 0o644); err != nil {
		t.Fatal(err)
	}

	// 1. Record a trace from the golden design.
	tracePath := filepath.Join(dir, "tb.csv")
	out, err := exec.Command(bin("tracegen"), "-design", goldenPath, "-cycles", "40",
		"-reset", "rst", "-out", tracePath, "-seed", "5").CombinedOutput()
	if err != nil {
		t.Fatalf("tracegen: %v\n%s", err, out)
	}

	// 2. The golden design passes all three backends.
	for _, backend := range []string{"cycle", "event", "gate"} {
		out, err := exec.Command(bin("vsim"), "-design", goldenPath, "-trace", tracePath,
			"-backend", backend).CombinedOutput()
		if err != nil || !strings.Contains(string(out), "PASS") {
			t.Fatalf("vsim %s on golden: %v\n%s", backend, err, out)
		}
	}

	// 3. Break the design and confirm the failure.
	buggy := strings.Replace(golden, "cnt ^ (cnt >> 1)", "cnt ^ (cnt >> 2)", 1)
	buggyPath := filepath.Join(dir, "buggy.v")
	if err := os.WriteFile(buggyPath, []byte(buggy), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin("vsim"), "-design", buggyPath, "-trace", tracePath,
		"-backend", "cycle").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "FAIL") {
		t.Fatalf("buggy design should fail: %v\n%s", err, out)
	}

	// 4. Repair it.
	repairedPath := filepath.Join(dir, "repaired.v")
	out, err = exec.Command(bin("rtlrepair"), "-design", buggyPath, "-trace", tracePath,
		"-out", repairedPath, "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("rtlrepair: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "status:   repaired") {
		t.Fatalf("unexpected rtlrepair output:\n%s", out)
	}

	// 5. The repaired design passes everywhere.
	for _, backend := range []string{"cycle", "event", "gate"} {
		out, err := exec.Command(bin("vsim"), "-design", repairedPath, "-trace", tracePath,
			"-backend", backend).CombinedOutput()
		if err != nil || !strings.Contains(string(out), "PASS") {
			t.Fatalf("vsim %s on repaired: %v\n%s", backend, err, out)
		}
	}

	// 6. The trivial safety property holds.
	out, err = exec.Command(bin("bmc"), "-design", repairedPath, "-property", "ok",
		"-depth", "6").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "holds") {
		t.Fatalf("bmc: %v\n%s", err, out)
	}

	// 7. btor2 export is parseable by the framework itself.
	btorOut, err := exec.Command(bin("vsim"), "-design", repairedPath, "-emit-btor2").Output()
	if err != nil {
		t.Fatalf("emit-btor2: %v", err)
	}
	if !strings.Contains(string(btorOut), "sort bitvec") {
		t.Fatalf("btor2 output malformed:\n%s", btorOut)
	}
}
