package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"rtlrepair/internal/core"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

// Request is the body of POST /v1/repair. Source uses the same wire
// format as the rtlrepair CLI: one Verilog text whose last module is the
// design under repair and whose preceding modules form the library.
// Trace is the self-describing testbench CSV (see internal/trace).
type Request struct {
	Source  string     `json:"source"`
	Trace   string     `json:"trace"`
	Options ReqOptions `json:"options"`
	// Tenant and Priority are fleet routing metadata: the router's
	// admission controller enforces per-tenant quotas and sheds batch
	// traffic under load. Both are deliberately excluded from the cache
	// keys — the same (source, trace, options) submitted by two tenants
	// shares one cached result.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// ReqOptions is the client-tunable subset of core.Options. Every field
// participates in the result-cache key, so two requests differing only
// in, say, the seed never alias.
type ReqOptions struct {
	// TimeoutMS caps the repair budget; the server clamps it to its own
	// per-job timeout. 0 means "use the server's job timeout".
	TimeoutMS    int64 `json:"timeout_ms,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
	ZeroInit     bool  `json:"zero_init,omitempty"`
	Basic        bool  `json:"basic,omitempty"`
	Certify      bool  `json:"certify,omitempty"`
	NoAbsint     bool  `json:"no_absint,omitempty"`
	NoPreprocess bool  `json:"no_preprocess,omitempty"`
}

// canonical renders the options in a fixed field order for hashing.
func (o ReqOptions) canonical() string {
	return fmt.Sprintf("timeout=%d seed=%d zero=%t basic=%t certify=%t noabsint=%t nopre=%t",
		o.TimeoutMS, o.Seed, o.ZeroInit, o.Basic, o.Certify, o.NoAbsint, o.NoPreprocess)
}

// resultKey is the content address of the full request: identical
// (source, trace, options) triples — and only those — share a key.
func (r *Request) resultKey() string {
	return contentKey("result", r.Source, r.Trace, r.Options.canonical())
}

// artifactKey addresses the frontend artifact: it ignores the trace and
// the trace-dependent options, so re-repairing one design against a new
// testbench reuses the parse+preprocess+elaborate work.
func (r *Request) artifactKey() string {
	return contentKey("artifact", r.Source, fmt.Sprintf("nopre=%t", r.Options.NoPreprocess))
}

// parsedRequest is a Request after syntactic validation: the design is
// split into top module and library, and the trace CSV is decoded.
type parsedRequest struct {
	req *Request
	top *verilog.Module
	lib map[string]*verilog.Module
	tr  *trace.Trace
}

// parseRequest validates a request. Errors are client errors (HTTP 400).
func parseRequest(req *Request) (*parsedRequest, error) {
	if strings.TrimSpace(req.Source) == "" {
		return nil, fmt.Errorf("empty source")
	}
	if strings.TrimSpace(req.Trace) == "" {
		return nil, fmt.Errorf("empty trace")
	}
	if !ValidPriority(req.Priority) {
		return nil, fmt.Errorf("unknown priority %q", req.Priority)
	}
	mods, err := verilog.Parse(req.Source)
	if err != nil {
		return nil, fmt.Errorf("source: %v", err)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("source: no modules")
	}
	lib := map[string]*verilog.Module{}
	for _, m := range mods[:len(mods)-1] {
		lib[m.Name] = m
	}
	tr, err := trace.ReadCSV(strings.NewReader(req.Trace))
	if err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return &parsedRequest{req: req, top: mods[len(mods)-1], lib: lib, tr: tr}, nil
}

// JobState is the lifecycle position of a job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
)

// SATJSON is the wire form of the aggregate CDCL statistics.
type SATJSON struct {
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learned      int64 `json:"learned"`
}

// RepairResult is the wire form of a finished repair. It is immutable
// once published (the result cache shares one value across jobs).
type RepairResult struct {
	Status       string   `json:"status"`
	Reason       string   `json:"reason,omitempty"`
	Template     string   `json:"template,omitempty"`
	Changes      int      `json:"changes"`
	ChangeDescs  []string `json:"change_descs,omitempty"`
	FirstFailure int      `json:"first_failure"`
	Repaired     string   `json:"repaired,omitempty"`
	DurationMS   int64    `json:"duration_ms"`
	SAT          SATJSON  `json:"sat"`
}

// toResult converts a core result to its wire form.
func toResult(res *core.Result) *RepairResult {
	rr := &RepairResult{
		Status:       res.Status.String(),
		Reason:       res.Reason,
		Template:     res.Template,
		Changes:      res.Changes,
		ChangeDescs:  res.ChangeDescs,
		FirstFailure: res.FirstFailure,
		DurationMS:   res.Duration.Milliseconds(),
		SAT: SATJSON{
			Conflicts:    int64(res.SAT.Conflicts),
			Decisions:    int64(res.SAT.Decisions),
			Propagations: int64(res.SAT.Propagations),
			Restarts:     int64(res.SAT.Restarts),
			Learned:      int64(res.SAT.Learned),
		},
	}
	if res.Repaired != nil {
		rr.Repaired = verilog.Print(res.Repaired)
	}
	return rr
}

// Job is one accepted repair. Identical concurrent submissions
// (singleflight dedup) share a single Job.
type Job struct {
	ID      string
	Key     string
	created time.Time

	parsed *parsedRequest

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	cached   bool
	result   *RepairResult
	done     chan struct{}
}

// JobView is the wire form of a job for GET /v1/jobs/{id}. QueueWaitMS
// and RunMS split the end-to-end latency into its queue-wait and
// run-time components (both still ticking for non-terminal jobs).
type JobView struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Cached      bool          `json:"cached,omitempty"`
	QueueWaitMS int64         `json:"queue_wait_ms"`
	RunMS       int64         `json:"run_ms"`
	Result      *RepairResult `json:"result,omitempty"`
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is broken
	}
	return hex.EncodeToString(b[:])
}

func newJob(key string, parsed *parsedRequest) *Job {
	return &Job{
		ID:      newJobID(),
		Key:     key,
		created: time.Now(),
		parsed:  parsed,
		state:   StateQueued,
		done:    make(chan struct{}),
	}
}

// markRunning transitions queued → running and returns the queue wait.
func (j *Job) markRunning() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	return j.started.Sub(j.created)
}

// finish publishes the result and wakes every waiter. Idempotent calls
// after the first are bugs, so finish panics on a double-finish.
func (j *Job) finish(rr *RepairResult, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone {
		panic("serve: job finished twice")
	}
	j.state = StateDone
	j.finished = time.Now()
	j.cached = cached
	j.result = rr
	close(j.done)
}

// state returns the job's current lifecycle position.
func (j *Job) currentState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runTime reports how long the job has been (or was) executing; zero
// for jobs that never left the queue (cache hits, queue timeouts).
func (j *Job) runTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runTimeLocked()
}

func (j *Job) runTimeLocked() time.Duration {
	if j.started.IsZero() {
		return 0
	}
	if j.finished.IsZero() {
		return time.Since(j.started)
	}
	return j.finished.Sub(j.started)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, State: j.state, Cached: j.cached, Result: j.result}
	switch j.state {
	case StateQueued:
		v.QueueWaitMS = time.Since(j.created).Milliseconds()
	default:
		if !j.started.IsZero() {
			v.QueueWaitMS = j.started.Sub(j.created).Milliseconds()
		}
	}
	v.RunMS = j.runTimeLocked().Milliseconds()
	return v
}
