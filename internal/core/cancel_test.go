package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"rtlrepair/internal/verilog"
)

// cancelHook is a fake template that cancels the repair's context the
// moment the portfolio reaches it, simulating a client disconnect (or a
// server-side job timeout) firing mid-portfolio.
type cancelHook struct {
	cancel context.CancelFunc
}

func (c cancelHook) Name() string { return "Cancel Hook" }

func (c cancelHook) Instrument(m *verilog.Module, env *Env, vars *VarTable) (*verilog.Module, error) {
	c.cancel()
	return nil, fmt.Errorf("cancelled by test hook")
}

func TestRepairCtxPreCancelled(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RepairCtx(ctx, mustParse(t, buggyCounter), tr, repairOpts())
	if res.Status != StatusTimeout {
		t.Fatalf("status = %v (%s), want timeout", res.Status, res.Reason)
	}
	if res.Reason != "cancelled" {
		t.Fatalf("reason = %q, want cancelled", res.Reason)
	}
}

// TestRepairCtxCancelMidPortfolio is the regression test for the bug
// where a cancelled portfolio reported StatusCannotRepair and dropped
// the partial solver statistics. Replace Literals does real SAT work on
// the missing-reset counter without finding a repair (only Conditional
// Overwrite repairs it); the second template then cancels the context.
// The result must report StatusTimeout with the Replace Literals
// statistics aggregated onto it.
func TestRepairCtxCancelMidPortfolio(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := repairOpts()
	opts.Workers = 1
	opts.Templates = []Template{ReplaceLiterals{}, cancelHook{cancel: cancel}}
	res := RepairCtx(ctx, mustParse(t, buggyCounter), tr, opts)
	if res.Status != StatusTimeout {
		t.Fatalf("status = %v (%s), want timeout", res.Status, res.Reason)
	}
	if res.Reason != "cancelled" {
		t.Fatalf("reason = %q, want cancelled", res.Reason)
	}
	if res.SAT.Decisions == 0 && res.SAT.Propagations == 0 {
		t.Fatalf("partial SAT stats dropped: %+v", res.SAT)
	}
	if len(res.PerTemplate) == 0 {
		t.Fatalf("per-template results dropped")
	}
}

// TestRepairCtxDeadlineReason: a deadline-expired context reports
// "timeout", not "cancelled".
func TestRepairCtxDeadlineReason(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := RepairCtx(ctx, mustParse(t, buggyCounter), tr, repairOpts())
	if res.Status != StatusTimeout {
		t.Fatalf("status = %v (%s), want timeout", res.Status, res.Reason)
	}
	if res.Reason != "timeout" {
		t.Fatalf("reason = %q, want timeout", res.Reason)
	}
}

func TestRepairMultiCtxPreCancelled(t *testing.T) {
	buggy := strings.Replace(goodCounter, "count + 1", "count + 2", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RepairMultiCtx(ctx, mustParse(t, buggy), twoTraces(t), repairOpts())
	if res.Status != StatusTimeout {
		t.Fatalf("status = %v (%s), want timeout", res.Status, res.Reason)
	}
	if res.Reason != "cancelled" {
		t.Fatalf("reason = %q, want cancelled", res.Reason)
	}
}

// TestRepairMultiAggregatesStats is the regression test for RepairMulti
// never populating Result.SAT: the multi-trace solver's statistics must
// land on the result even on the successful path.
func TestRepairMultiAggregatesStats(t *testing.T) {
	buggy := strings.Replace(goodCounter, "count + 1", "count + 2", 1)
	res := RepairMulti(mustParse(t, buggy), twoTraces(t), repairOpts())
	if res.Status != StatusRepaired {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if res.SAT.Decisions == 0 && res.SAT.Propagations == 0 {
		t.Fatalf("multi-trace SAT stats not aggregated: %+v", res.SAT)
	}
}

func TestRepairAllCtxPreCancelled(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cands := RepairAllCtx(ctx, mustParse(t, buggyCounter), tr, repairOpts(), 4)
	if len(cands) != 0 {
		t.Fatalf("pre-cancelled sampling returned %d candidates", len(cands))
	}
}

// TestFrontendReuse: a pre-built Frontend artifact must produce the
// same repair as the inline frontend (this is the contract the serving
// layer's artifact cache relies on), including when shared across
// several repairs.
func TestFrontendReuse(t *testing.T) {
	ins, outs := counterIO()
	tr := recordGolden(t, goodCounter, ins, outs, counterRows())
	m := mustParse(t, buggyCounter)
	base := Repair(m, tr, repairOpts())
	if base.Status != StatusRepaired {
		t.Fatalf("baseline status = %v (%s)", base.Status, base.Reason)
	}
	fe := NewFrontend(m, nil, false)
	if fe.Reason != "" {
		t.Fatalf("frontend failed: %s", fe.Reason)
	}
	for i := 0; i < 2; i++ {
		opts := repairOpts()
		opts.Frontend = fe
		res := Repair(m, tr, opts)
		if res.Status != StatusRepaired {
			t.Fatalf("run %d: status = %v (%s)", i, res.Status, res.Reason)
		}
		if verilog.Print(res.Repaired) != verilog.Print(base.Repaired) {
			t.Fatalf("run %d: cached-frontend repair differs from baseline", i)
		}
		checkRepairPasses(t, res, tr)
	}
}
