package analysis_test

import (
	"strings"
	"testing"

	"rtlrepair/internal/analysis"
)

// evenCounterSrc only ever holds even values in count (init 0, +2
// steps), so the congruence domain proves count[0] == 0 as a
// reachability invariant: the count[0] branch is dead, the odd case
// arms are unreachable, and flag — assigned only on those dead paths —
// is a constant net.
const evenCounterSrc = `
module m(input clk, input en, output reg [7:0] count, output reg flag);
  initial count = 8'd0;
  initial flag = 1'b0;
  always @(posedge clk) begin
    if (en) count <= count + 8'd2;
    if (count[0]) flag <= 1'b1;
    case (count[1:0])
      2'b00: ;
      2'b01: flag <= 1'b1;
      2'b10: ;
      2'b11: flag <= 1'b1;
    endcase
  end
endmodule`

func TestFactDeadBranch(t *testing.T) {
	r := analyze(t, evenCounterSrc)
	diags := r.ByRule(analysis.RuleFactDeadBranch)
	if len(diags) != 1 {
		t.Fatalf("fact-dead-branch: got %d diagnostics, want 1\n%s", len(diags), reportString(r))
	}
	d := diags[0]
	if !strings.Contains(d.Msg, "then-branch is dead") {
		t.Errorf("unexpected message %q", d.Msg)
	}
	if len(d.Explain) == 0 {
		t.Fatalf("diagnostic carries no Explain lines")
	}
	joined := strings.Join(d.Explain, "\n")
	if !strings.Contains(joined, "reach(count)") || !strings.Contains(joined, "cond(") {
		t.Errorf("explain lines missing fact justification:\n%s", joined)
	}
}

func TestFactUnreachableArm(t *testing.T) {
	r := analyze(t, evenCounterSrc)
	diags := r.ByRule(analysis.RuleFactDeadArm)
	if len(diags) != 2 {
		t.Fatalf("fact-unreachable-arm: got %d diagnostics, want 2 (labels 01 and 11)\n%s",
			len(diags), reportString(r))
	}
	for _, d := range diags {
		if d.Signal != "count" {
			t.Errorf("diagnostic signal %q, want count", d.Signal)
		}
		if len(d.Explain) == 0 {
			t.Errorf("arm diagnostic carries no Explain lines")
		}
	}
}

func TestConstNet(t *testing.T) {
	r := analyze(t, evenCounterSrc)
	diags := r.ByRule(analysis.RuleConstNet)
	found := false
	for _, d := range diags {
		if d.Signal == "flag" {
			found = true
			if !strings.Contains(d.Msg, "0x0") {
				t.Errorf("const-net message %q does not state the constant", d.Msg)
			}
			if len(d.Explain) == 0 {
				t.Errorf("const-net diagnostic carries no Explain lines")
			}
		}
		if d.Signal == "count" {
			t.Errorf("count reported as constant; it is not")
		}
	}
	if !found {
		t.Fatalf("flag not reported as const-net\n%s", reportString(r))
	}
}

// TestFactPassSkipsUndecided checks the pass stays silent on a design
// whose conditions reachability cannot decide (synchronous reset, no
// initial values — the dominant corpus shape).
func TestFactPassSkipsUndecided(t *testing.T) {
	r := analyze(t, `
module m(input clk, input rst, input en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule`)
	for _, rule := range []string{analysis.RuleFactDeadBranch, analysis.RuleFactDeadArm, analysis.RuleConstNet} {
		if n := len(r.ByRule(rule)); n != 0 {
			t.Errorf("rule %s fired %d times on an undecidable design\n%s", rule, n, reportString(r))
		}
	}
}
