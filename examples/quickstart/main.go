// The quickstart example walks through the paper's running example
// (Figures 1 and 2): the first_counter circuit with a missing count
// reset is repaired from a tiny I/O trace. It prints each artifact of
// the flow: the buggy source, the transition system the synthesizer
// sees, the I/O trace, and finally the repair diff.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/core"
	"rtlrepair/internal/eval"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/smt"
	"rtlrepair/internal/synth"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

// buggyCounter is Figure 1a: the count reset is missing.
const buggyCounter = `
module first_counter(input clock, input reset, input enable,
                     output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset == 1'b1) begin
    // count reset is missing:
    // count <= 4'b0000;
    overflow <= 1'b0;
  end else if (enable == 1'b1) begin
    count <= count + 1;
  end
  if (count == 4'b1111) begin
    overflow <= 1'b1;
  end
end
endmodule`

func main() {
	fmt.Println("=== 1. The buggy design (Figure 1a) ===")
	fmt.Println(strings.TrimSpace(buggyCounter))

	m, err := verilog.ParseModule(buggyCounter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== 2. Transition-system encoding (Figure 1b) ===")
	sys, _, err := synth.Elaborate(smt.NewContext(), m, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.WriteBtor())

	fmt.Println("\n=== 3. The I/O trace (Figure 2a) ===")
	// After reset, count must be zero; later cycles pin down the
	// increment and hold behaviour so overfitting repairs are rejected.
	ins := []trace.Signal{{Name: "reset", Width: 1}, {Name: "enable", Width: 1}}
	outs := []trace.Signal{{Name: "count", Width: 4}, {Name: "overflow", Width: 1}}
	tr := trace.New(ins, outs)
	tr.AddRow([]bv.XBV{bv.KU(1, 1), bv.X(1)}, []bv.XBV{bv.X(4), bv.X(1)})         // reset, outputs don't care
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 0)}, []bv.XBV{bv.KU(4, 0), bv.X(1)}) // count must be 0
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 1)}, []bv.XBV{bv.KU(4, 0), bv.X(1)}) // still 0 pre-edge
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 1)}, []bv.XBV{bv.KU(4, 1), bv.X(1)}) // incremented
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 0)}, []bv.XBV{bv.KU(4, 2), bv.X(1)}) // hold
	tr.AddRow([]bv.XBV{bv.KU(1, 0), bv.KU(1, 0)}, []bv.XBV{bv.KU(4, 2), bv.X(1)}) // hold
	var csv strings.Builder
	if err := tr.WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}
	fmt.Print(csv.String())

	fmt.Println("\n=== 4. Repair (Figures 2b-2d: templates + minimal-change synthesis) ===")
	res := core.Repair(m, tr, core.Options{
		Policy:  sim.Randomize,
		Seed:    1,
		Timeout: 30 * time.Second,
	})
	fmt.Printf("status:   %s in %s\n", res.Status, res.Duration.Round(time.Millisecond))
	if res.Status != core.StatusRepaired {
		log.Fatalf("unexpected status (reason: %s)", res.Reason)
	}
	fmt.Printf("template: %s\nchanges:  %d (the minimal solution, Figure 2d)\n", res.Template, res.Changes)
	for _, d := range res.ChangeDescs {
		fmt.Printf("  - %s\n", d)
	}

	fmt.Println("\n=== 5. The repaired source and its diff ===")
	fmt.Println(verilog.Print(res.Repaired))
	fmt.Println("--- diff buggy vs. repaired ---")
	fmt.Print(eval.DiffLines(verilog.Print(m), verilog.Print(res.Repaired)))
}
