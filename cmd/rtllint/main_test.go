package main

import (
	"strings"
	"testing"

	"rtlrepair/internal/analysis"
)

// TestFactDrivenPinned pins the fact-driven diagnostics on the
// committed showcase design: the exact rule set, signals and verdicts
// must stay stable — they are part of the documented rtllint surface.
func TestFactDrivenPinned(t *testing.T) {
	report, err := lintFile("../../testdata/lint/even_counter.v")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	type key struct{ rule, signal string }
	got := map[key]int{}
	for _, d := range report.Diagnostics {
		got[key{d.Rule, d.Signal}]++
	}
	want := map[key]int{
		{analysis.RuleConstNet, "flag"}:     1,
		{analysis.RuleFactDeadBranch, ""}:   1,
		{analysis.RuleFactDeadArm, "count"}: 2,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("rule %s signal %q: got %d diagnostics, want %d", k.rule, k.signal, got[k], n)
		}
	}
	// Every fact-driven diagnostic must justify itself for -explain.
	for _, d := range report.Diagnostics {
		switch d.Rule {
		case analysis.RuleConstNet, analysis.RuleFactDeadBranch, analysis.RuleFactDeadArm:
			if len(d.Explain) == 0 {
				t.Errorf("%s diagnostic has no Explain lines", d.Rule)
			}
			joined := strings.Join(d.Explain, "\n")
			if !strings.Contains(joined, "reach(") && !strings.Contains(joined, "cond(") {
				t.Errorf("%s Explain lines carry no abstract fact:\n%s", d.Rule, joined)
			}
		}
	}
}
