package netlist

import (
	"math/rand"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/trace"
)

// tval is a 4-state gate value.
type tval uint8

// Gate values.
const (
	v0 tval = iota
	v1
	vX
)

func fromBit(known, val bool) tval {
	if !known {
		return vX
	}
	if val {
		return v1
	}
	return v0
}

func andT(a, b tval) tval {
	if a == v0 || b == v0 {
		return v0
	}
	if a == vX || b == vX {
		return vX
	}
	return v1
}

func notT(a tval) tval {
	switch a {
	case v0:
		return v1
	case v1:
		return v0
	}
	return vX
}

// GateSim simulates a Netlist cycle by cycle with per-bit 4-state values
// (gate-level X-pessimism: no branch merging, X spreads through
// reconvergent muxes).
type GateSim struct {
	nl   *Netlist
	vals []tval
	rng  *rand.Rand
	// policy: 0 = keep X, 1 = randomize, 2 = zero
	policy int
}

// Policy constants mirroring sim.UnknownPolicy (kept local to avoid an
// import cycle; callers translate).
const (
	PolicyKeepX = iota
	PolicyRandomize
	PolicyZero
)

// NewGateSim returns a gate simulator with flops at their power-on value.
func NewGateSim(nl *Netlist, policy int, seed int64) *GateSim {
	g := &GateSim{nl: nl, vals: make([]tval, len(nl.Nodes)), rng: rand.New(rand.NewSource(seed)), policy: policy}
	g.Reset()
	return g
}

// Reset re-initializes all flip-flops.
func (g *GateSim) Reset() {
	for i := range g.vals {
		g.vals[i] = vX
	}
	g.vals[0] = v0 // constant node
	for _, d := range g.nl.DFFs {
		switch {
		case d.Init != nil:
			g.vals[d.Node] = fromBit(true, *d.Init)
		case g.policy == PolicyRandomize:
			g.vals[d.Node] = fromBit(true, g.rng.Intn(2) == 1)
		case g.policy == PolicyZero:
			g.vals[d.Node] = v0
		default:
			g.vals[d.Node] = vX
		}
	}
}

func (g *GateSim) litVal(l Lit) tval {
	v := g.vals[l.Node()]
	if l.Inverted() {
		return notT(v)
	}
	return v
}

// Step drives inputs, evaluates the combinational cloud, samples the
// outputs, then clocks the flops. Unknown input bits are concretized per
// policy.
func (g *GateSim) Step(inputs map[string]bv.XBV) map[string]bv.XBV {
	for _, w := range g.nl.Inputs {
		v, ok := inputs[w.Name]
		if !ok {
			v = bv.X(len(w.Lits))
		}
		for i, l := range w.Lits {
			known := v.Known.Bit(i)
			var bit bool
			if known {
				bit = v.Val.Bit(i)
			} else {
				switch g.policy {
				case PolicyRandomize:
					known, bit = true, g.rng.Intn(2) == 1
				case PolicyZero:
					known, bit = true, false
				}
			}
			g.vals[l.Node()] = fromBit(known, bit)
		}
	}
	// Combinational evaluation: nodes are in topological order.
	for i, node := range g.nl.Nodes {
		if node.Kind == KindAnd {
			g.vals[i] = andT(g.litVal(node.A), g.litVal(node.B))
		}
	}
	outs := map[string]bv.XBV{}
	for _, w := range g.nl.Outputs {
		val, known := bv.Zero(len(w.Lits)), bv.Zero(len(w.Lits))
		for i, l := range w.Lits {
			switch g.litVal(l) {
			case v1:
				val = val.WithBit(i, true)
				known = known.WithBit(i, true)
			case v0:
				known = known.WithBit(i, true)
			}
		}
		outs[w.Name] = bv.XBV{Val: val, Known: known}
	}
	// Clock edge: capture D inputs, then update flops.
	nextVals := make([]tval, len(g.nl.DFFs))
	for i, d := range g.nl.DFFs {
		nextVals[i] = g.litVal(d.Next)
	}
	for i, d := range g.nl.DFFs {
		g.vals[d.Node] = nextVals[i]
	}
	return outs
}

// RunGateTrace checks a trace against the gate-level netlist, mirroring
// sim.RunTrace.
func RunGateTrace(nl *Netlist, tr *trace.Trace, policy int, seed int64) (firstFailure int, failedSignal string) {
	g := NewGateSim(nl, policy, seed)
	for cycle := 0; cycle < tr.Len(); cycle++ {
		inputs := map[string]bv.XBV{}
		for i, sig := range tr.Inputs {
			inputs[sig.Name] = tr.InputRows[cycle][i]
		}
		outs := g.Step(inputs)
		for i, sig := range tr.Outputs {
			exp := tr.OutputRows[cycle][i]
			got, ok := outs[sig.Name]
			if !ok {
				continue
			}
			if got.Width() != exp.Width() {
				if exp.Known.IsZero() {
					continue
				}
				return cycle, sig.Name
			}
			check := exp.Known
			if !got.Known.And(check).Eq(check) ||
				!exp.Val.And(check).Eq(got.Val.And(check)) {
				return cycle, sig.Name
			}
		}
	}
	return -1, ""
}
