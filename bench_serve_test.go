package rtlrepair_test

import (
	"os"
	"testing"

	"rtlrepair/internal/bench"
	"rtlrepair/internal/serve"
)

// TestBenchServeArtifact pins the committed BENCH_serve.json to the
// serve.LoadReport schema: CI re-validates the artifact on every run so
// a schema change that forgets to regenerate the snapshot fails fast.
// The committed artifact is a 3-node fleet run over the full corpus;
// regenerate with (raise -job-timeout when the nodes share one box):
//
//	rtlserved -addr localhost:8181 -name n1 -wal /tmp/f/n1.wal -artifacts /tmp/f/cas &
//	rtlserved -addr localhost:8182 -name n2 -wal /tmp/f/n2.wal -artifacts /tmp/f/cas &
//	rtlserved -addr localhost:8183 -name n3 -wal /tmp/f/n3.wal -artifacts /tmp/f/cas &
//	rtlserved -addr localhost:8180 -router \
//	        -nodes n1=http://localhost:8181,n2=http://localhost:8182,n3=http://localhost:8183 &
//	rtlload -addr http://localhost:8180 -cluster -n 90 -c 2 \
//	        -goldens testdata/repair_goldens -out BENCH_serve.json
//
// A single-node regeneration also validates (the fleet section is
// optional), but drops the cluster's per-node split from the artifact.
func TestBenchServeArtifact(t *testing.T) {
	data, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatalf("committed artifact missing: %v", err)
	}
	r, err := serve.ParseLoadReport(data)
	if err != nil {
		t.Fatalf("BENCH_serve.json does not parse as a valid LoadReport: %v", err)
	}
	// The pinned run replays registry designs, exercises the result
	// cache with exact resubmissions, and follows every job over SSE —
	// assert those properties so a regenerated artifact can't silently
	// drop coverage.
	for _, d := range r.Designs {
		if bench.ByName(d) == nil {
			t.Errorf("design %q not in the benchmark registry", d)
		}
	}
	if len(r.Mismatches) != 0 {
		t.Errorf("pinned run has golden mismatches: %v", r.Mismatches)
	}
	if r.Errors != 0 {
		t.Errorf("pinned run has %d transport errors", r.Errors)
	}
	if r.Resubmits == 0 {
		t.Error("pinned run has no resubmissions; the cache path is unexercised")
	}
	if r.SSEEvents == 0 {
		t.Error("pinned run streamed no SSE events; the fan-out path is unexercised")
	}
	if r.Serve["serve.jobs.accepted"] == 0 {
		t.Error("serve.jobs.accepted counter missing or zero")
	}
}
