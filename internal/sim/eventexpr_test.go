package sim

import (
	"testing"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/verilog"
)

// evalIn builds an event simulator, drives inputs, settles, and reads
// one output.
func evalIn(t *testing.T, src string, inputs map[string]bv.XBV, out string) bv.XBV {
	t.Helper()
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEventSim(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range inputs {
		es.SetInput(name, v)
	}
	es.settle()
	if es.OscErr != nil {
		t.Fatal(es.OscErr)
	}
	return es.Value(out)
}

func TestEventExprArithAndShift(t *testing.T) {
	src := `
module e(input [7:0] a, b, output [7:0] sum, diff, prod, quo, rem, shl, shr);
assign sum = a + b;
assign diff = a - b;
assign prod = a * b;
assign quo = a / b;
assign rem = a % b;
assign shl = a << b[2:0];
assign shr = a >> b[2:0];
endmodule`
	in := map[string]bv.XBV{"a": bv.KU(8, 200), "b": bv.KU(8, 3)}
	checks := map[string]uint64{
		"sum": (200 + 3) & 0xff, "diff": 197, "prod": (200 * 3) & 0xff,
		"quo": 66, "rem": 2, "shl": (200 << 3) & 0xff, "shr": 200 >> 3,
	}
	for out, want := range checks {
		if got := evalIn(t, src, in, out); got.Val.Uint64() != want || got.HasUnknown() {
			t.Errorf("%s = %v, want %d", out, got, want)
		}
	}
}

func TestEventExprSignedArithmeticShift(t *testing.T) {
	src := `
module s(input signed [7:0] a, output signed [7:0] y);
assign y = a >>> 2;
endmodule`
	got := evalIn(t, src, map[string]bv.XBV{"a": bv.KU(8, 0x84)}, "y")
	if got.Val.Uint64() != 0xe1 {
		t.Fatalf("y = %v, want 0xe1", got)
	}
}

func TestEventExprSignedComparison(t *testing.T) {
	src := `
module c(input signed [7:0] a, b, output lt, le, gt, ge);
assign lt = a < b;
assign le = a <= b;
assign gt = a > b;
assign ge = a >= b;
endmodule`
	in := map[string]bv.XBV{"a": bv.KU(8, 0xfe) /* -2 */, "b": bv.KU(8, 3)}
	for out, want := range map[string]uint64{"lt": 1, "le": 1, "gt": 0, "ge": 0} {
		if got := evalIn(t, src, in, out); got.Val.Uint64() != want {
			t.Errorf("%s = %v, want %d", out, got, want)
		}
	}
}

func TestEventExprReductionsAndLogic(t *testing.T) {
	src := `
module r(input [3:0] a, output rand_, ror_, rxor_, nand_, nor_, nxor_, not_);
assign rand_ = &a;
assign ror_ = |a;
assign rxor_ = ^a;
assign nand_ = ~&a;
assign nor_ = ~|a;
assign nxor_ = ~^a;
assign not_ = !a;
endmodule`
	in := map[string]bv.XBV{"a": bv.KU(4, 0b0111)}
	for out, want := range map[string]uint64{
		"rand_": 0, "ror_": 1, "rxor_": 1, "nand_": 1, "nor_": 0, "nxor_": 0, "not_": 0,
	} {
		if got := evalIn(t, src, in, out); got.Val.Uint64() != want {
			t.Errorf("%s = %v, want %d", out, got, want)
		}
	}
}

func TestEventExprPartSelectAndConcatWrites(t *testing.T) {
	src := `
module w(input clk, input [3:0] n, output reg [7:0] q, output reg [3:0] h, output reg [3:0] l);
initial q = 8'h00;
always @(posedge clk) begin
  q[7:4] <= n;
  q[1:0] <= n[1:0];
  {h, l} <= {n, ~n};
end
endmodule`
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEventSim(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	es.Step(map[string]bv.XBV{"n": bv.KU(4, 0xa)}, nil)
	if got := es.Value("q"); got.Val.Uint64() != 0xa2 {
		t.Fatalf("q = %v, want 0xa2", got)
	}
	if es.Value("h").Val.Uint64() != 0xa || es.Value("l").Val.Uint64() != 0x5 {
		t.Fatalf("h=%v l=%v", es.Value("h"), es.Value("l"))
	}
}

func TestEventExprDynamicIndexWrite(t *testing.T) {
	src := `
module d(input clk, input [2:0] i, input b, output reg [7:0] q);
initial q = 8'hff;
always @(posedge clk) q[i] <= b;
endmodule`
	m, _ := verilog.ParseModule(src)
	es, err := NewEventSim(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	es.Step(map[string]bv.XBV{"i": bv.KU(3, 4), "b": bv.KU(1, 0)}, nil)
	if got := es.Value("q"); got.Val.Uint64() != 0xef {
		t.Fatalf("q = %v, want 0xef", got)
	}
	// An X index loses the write (simulator semantics).
	es.Step(map[string]bv.XBV{"i": bv.X(3), "b": bv.KU(1, 0)}, nil)
	if got := es.Value("q"); got.Val.Uint64() != 0xef {
		t.Fatalf("q after X-index write = %v, want unchanged", got)
	}
}

func TestEventExprDynamicIndexReadWithXIndex(t *testing.T) {
	src := `
module x(input [7:0] a, input [2:0] i, output y);
assign y = a[i];
endmodule`
	got := evalIn(t, src, map[string]bv.XBV{"a": bv.KU(8, 0xff), "i": bv.X(3)}, "y")
	if !got.HasUnknown() {
		t.Fatalf("a[x] = %v, want X", got)
	}
}

func TestEventExprShiftWithXAmount(t *testing.T) {
	src := `
module sx(input [7:0] a, input [2:0] n, output [7:0] y);
assign y = a >> n;
endmodule`
	got := evalIn(t, src, map[string]bv.XBV{"a": bv.KU(8, 0x80), "n": bv.X(3)}, "y")
	if !got.HasUnknown() {
		t.Fatalf("a >> x = %v, want X", got)
	}
	// Known shift of a partially-known value keeps the shifted-in zeros
	// known.
	half, _ := bv.ParseX("xxxx1111")
	got = evalIn(t, src, map[string]bv.XBV{"a": half, "n": bv.KU(3, 4)}, "y")
	if got.String() != "8'b0000xxxx" {
		t.Fatalf("shift known-mask = %v", got)
	}
}

func TestEventExprRepeatAndConcat(t *testing.T) {
	src := `
module rc(input [1:0] a, output [7:0] y, output [3:0] z);
assign y = {2{a, ~a}};
assign z = {a, a};
endmodule`
	got := evalIn(t, src, map[string]bv.XBV{"a": bv.KU(2, 0b01)}, "y")
	if got.Val.Uint64() != 0b01100110 {
		t.Fatalf("y = %v", got)
	}
	got = evalIn(t, src, map[string]bv.XBV{"a": bv.KU(2, 0b01)}, "z")
	if got.Val.Uint64() != 0b0101 {
		t.Fatalf("z = %v", got)
	}
}

func TestEventExprTernaryXMerge(t *testing.T) {
	src := `
module tm(input c, input [3:0] a, output [3:0] y);
assign y = c ? a : a;
endmodule`
	got := evalIn(t, src, map[string]bv.XBV{"c": bv.X(1), "a": bv.KU(4, 9)}, "y")
	if got.HasUnknown() || got.Val.Uint64() != 9 {
		t.Fatalf("x ? a : a = %v, want 9 (branch merge)", got)
	}
}

func TestEventExprMemoryThroughScalarization(t *testing.T) {
	// EventSim receives the scalarized design via Flatten.
	src := `
module mrf(input clk, input we, input [1:0] wa, input [3:0] wd,
           input [1:0] ra, output [3:0] rd);
reg [3:0] m [0:3];
assign rd = m[ra];
always @(posedge clk) if (we) m[wa] <= wd;
endmodule`
	m, err := verilog.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEventSim(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	es.Step(map[string]bv.XBV{"we": bv.KU(1, 1), "wa": bv.KU(2, 2), "wd": bv.KU(4, 0xb), "ra": bv.KU(2, 0)}, nil)
	out := es.Step(map[string]bv.XBV{"we": bv.KU(1, 0), "wa": bv.KU(2, 0), "wd": bv.KU(4, 0), "ra": bv.KU(2, 2)}, []string{"rd"})
	_ = out
	es.settle()
	if got := es.Value("rd"); got.Val.Uint64() != 0xb || !got.IsFullyKnown() {
		t.Fatalf("rd = %v, want 0xb", got)
	}
}
