package rtlrepair_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"rtlrepair/internal/bench"
	"rtlrepair/internal/bv"
	"rtlrepair/internal/core"
	"rtlrepair/internal/obs"
	"rtlrepair/internal/sim"
	"rtlrepair/internal/trace"
	"rtlrepair/internal/verilog"
)

const obsCounterSrc = `
module first_counter(input clock, input reset, input enable,
                     output reg [3:0] count, output reg overflow);
always @(posedge clock) begin
  if (reset == 1'b1) begin
    count <= 4'b0000;
    overflow <= 1'b0;
  end else if (enable == 1'b1) begin
    count <= count + 1;
  end
  if (count == 4'b1111) begin
    overflow <= 1'b1;
  end
end
endmodule`

// impossibleTrace demands a pseudo-random count sequence no template can
// produce, so every portfolio attempt runs its full window search and
// the repair ends cannot-repair. With no candidate ever found there is
// no cross-attempt cancellation, which is what makes the span tree
// independent of the worker count.
func impossibleTrace() *trace.Trace {
	tr := trace.New(
		[]trace.Signal{{Name: "reset", Width: 1}, {Name: "enable", Width: 1}},
		[]trace.Signal{{Name: "count", Width: 4}, {Name: "overflow", Width: 1}},
	)
	want := []uint64{0, 7, 1, 12, 4, 11, 2, 9}
	for i, w := range want {
		rst, en := uint64(0), uint64(1)
		if i == 0 {
			rst, en = 1, 0
		}
		tr.AddRow(
			[]bv.XBV{bv.KU(1, rst), bv.KU(1, en)},
			[]bv.XBV{bv.KU(4, w), bv.KU(1, 0)},
		)
	}
	return tr
}

// TestTraceBytesIdenticalAcrossWorkers is the cross-worker determinism
// golden: a cannot-repair run at workers=1 and workers=4 must export
// byte-identical JSONL and Chrome traces once timestamps and worker
// placement are scrubbed.
func TestTraceBytesIdenticalAcrossWorkers(t *testing.T) {
	m, err := verilog.ParseModule(obsCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	exports := func(workers int) (jsonl, chrome []byte) {
		tracer := obs.New()
		ctx := obs.NewContext(context.Background(), obs.Scope{Tracer: tracer})
		res := core.RepairCtx(ctx, m, impossibleTrace(), core.Options{
			Policy:  sim.Randomize,
			Seed:    7,
			Timeout: 120 * time.Second,
			Workers: workers,
		})
		if res.Status != core.StatusCannotRepair {
			t.Fatalf("workers=%d: status = %v, want cannot-repair (fixture must stay unrepairable)", workers, res.Status)
		}
		var jb, cb bytes.Buffer
		if err := tracer.WriteJSONL(&jb); err != nil {
			t.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(&cb); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateJSONL(jb.Bytes()); err != nil {
			t.Fatalf("workers=%d: invalid trace: %v", workers, err)
		}
		sj, err := obs.ScrubJSONL(jb.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		sc, err := obs.ScrubChromeTrace(cb.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return sj, sc
	}
	j1, c1 := exports(1)
	j4, c4 := exports(4)
	if !bytes.Equal(j1, j4) {
		t.Errorf("scrubbed JSONL differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", j1, j4)
	}
	if !bytes.Equal(c1, c4) {
		t.Errorf("scrubbed Chrome trace differs between workers=1 and workers=4")
	}
}

// TestRingBytesIdenticalAcrossWorkers is the flight-recorder twin of
// the trace test above: the scrubbed ring dump — span begin/end pairs,
// window progress events, and SAT heartbeats — must be byte-identical
// across worker counts. Heartbeats are keyed on cumulative conflicts
// (not wall clock), so with clause sharing disabled every attempt's
// beat sequence depends only on the seed; ScrubRingJSONL strips the
// volatile fields (seq, t_us, worker, time_*) and sorts lines, making
// the remainder a deterministic multiset.
func TestRingBytesIdenticalAcrossWorkers(t *testing.T) {
	m, err := verilog.ParseModule(obsCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	rings := func(workers int) []byte {
		rec := obs.NewRecorder(obs.DefaultRingCapacity)
		ctx := obs.NewContext(context.Background(), obs.Scope{Rec: rec})
		res := core.RepairCtx(ctx, m, impossibleTrace(), core.Options{
			Policy:        sim.Randomize,
			Seed:          7,
			Timeout:       120 * time.Second,
			Workers:       workers,
			NoClauseShare: true,
		})
		if res.Status != core.StatusCannotRepair {
			t.Fatalf("workers=%d: status = %v, want cannot-repair (fixture must stay unrepairable)", workers, res.Status)
		}
		if dropped := rec.Dropped(); dropped != 0 {
			t.Fatalf("workers=%d: recorder dropped %d events (grow the ring)", workers, dropped)
		}
		var buf bytes.Buffer
		if err := rec.WriteRingJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateRingJSONL(buf.Bytes()); err != nil {
			t.Fatalf("workers=%d: invalid ring dump: %v", workers, err)
		}
		scrubbed, err := obs.ScrubRingJSONL(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return scrubbed
	}
	r1 := rings(1)
	r4 := rings(4)
	if !bytes.Equal(r1, r4) {
		t.Errorf("scrubbed ring differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", r1, r4)
	}
}

// TestPhaseCoverage checks the acceptance bar that the phase spans
// account for >=95% of the repair wall clock: the root "repair" span's
// direct children must own (nearly) all of its duration, so a trace
// reader never stares at unexplained time.
func TestPhaseCoverage(t *testing.T) {
	var bm *bench.Benchmark
	for _, b := range bench.Registry() {
		if b.Name == "counter_k1" {
			bm = b
			break
		}
	}
	if bm == nil {
		t.Fatal("benchmark counter_k1 not in registry")
	}
	tr, err := bm.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m, err := bm.BuggyModule()
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.New()
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), obs.Scope{Tracer: tracer, Metrics: reg})
	res := core.RepairCtx(ctx, m, tr, core.Options{
		Policy:  sim.Randomize,
		Seed:    goldenSeed(bm, tr, 1),
		Timeout: 120 * time.Second,
		Workers: 1,
	})
	if res.Status != core.StatusRepaired {
		t.Fatalf("status = %v (reason %s)", res.Status, res.Reason)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateJSONL(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	type spanLine struct {
		Type   string `json:"type"`
		ID     int    `json:"id"`
		Parent int    `json:"parent"`
		Name   string `json:"name"`
		DurUS  int64  `json:"dur_us"`
	}
	var rootID int
	var rootDur, childDur int64
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var sp spanLine
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatal(err)
		}
		if sp.Type != "span" {
			continue
		}
		switch {
		case sp.Parent == 0 && sp.Name == "repair":
			if rootID != 0 {
				t.Fatal("multiple repair root spans")
			}
			rootID = sp.ID
			rootDur = sp.DurUS
		case rootID != 0 && sp.Parent == rootID:
			childDur += sp.DurUS
		}
	}
	if rootID == 0 {
		t.Fatal("no repair root span in trace")
	}
	if rootDur <= 0 {
		t.Fatalf("repair span duration %dus", rootDur)
	}
	coverage := float64(childDur) / float64(rootDur)
	t.Logf("repair %dus, phases %dus, coverage %.2f%%", rootDur, childDur, 100*coverage)
	if coverage < 0.95 {
		t.Errorf("phase spans cover %.2f%% of repair wall clock, want >= 95%%", 100*coverage)
	}

	// The metrics registry must carry the run's aggregates without any
	// verbose flag: the counters are fed from the always-populated Result.
	if reg.Counter("repair.runs") != 1 {
		t.Errorf("repair.runs = %d, want 1", reg.Counter("repair.runs"))
	}
	if reg.Counter("sat.propagations") == 0 {
		t.Error("sat.propagations not aggregated into metrics")
	}
	var mbuf bytes.Buffer
	if err := reg.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(mbuf.Bytes(), &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics JSON missing %q section", key)
		}
	}
}
