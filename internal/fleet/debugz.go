package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// FleetNodeView is one member in the /debugz/fleet payload: the
// router's view (reachability, last probe error) plus the node's own
// /debugz/node snapshot when it answered.
type FleetNodeView struct {
	Name      string     `json:"name"`
	Base      string     `json:"base"`
	Reachable bool       `json:"reachable"`
	Ready     bool       `json:"ready"`
	Error     string     `json:"error,omitempty"`
	Debug     *NodeDebug `json:"debug,omitempty"`
}

// FleetTotals aggregates the per-node gauges the operators grep for
// first: fleet queue pressure, stalled jobs, WAL backlog.
type FleetTotals struct {
	Nodes       int     `json:"nodes"`
	NodesReady  int     `json:"nodes_ready"`
	QueueDepth  int     `json:"queue_depth"`
	QueueCap    int     `json:"queue_cap"`
	Inflight    int     `json:"inflight"`
	Stalled     float64 `json:"stalled"`
	WALPending  int     `json:"wal_pending"`
	WALReplayed int64   `json:"wal_replayed"`
	Completed   int64   `json:"completed"`
	Cached      int64   `json:"cached"`
	Deduped     int64   `json:"deduped"`
}

// RouterView is the router's own counters in the fleet payload.
type RouterView struct {
	Forwarded     int64 `json:"forwarded"`
	Retries       int64 `json:"retries"`
	ForwardErrors int64 `json:"forward_errors"`
	Exhausted     int64 `json:"exhausted"`
	QuotaRejected int64 `json:"quota_rejected"`
	ShedBatch     int64 `json:"shed_batch"`
}

// FleetDebug is the GET /debugz/fleet payload.
type FleetDebug struct {
	Totals FleetTotals     `json:"totals"`
	Router RouterView      `json:"router"`
	Nodes  []FleetNodeView `json:"nodes"`
}

// Fleet snapshots the whole cluster: every member's /debugz/node is
// fetched concurrently (bounded by the probe timeout) and merged with
// the router's probe state and its own counters.
func (rt *Router) Fleet(ctx context.Context) FleetDebug {
	views := make([]FleetNodeView, len(rt.members))
	var wg sync.WaitGroup
	for i, m := range rt.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			views[i] = rt.nodeView(ctx, m)
		}(i, m)
	}
	wg.Wait()

	fd := FleetDebug{Nodes: views}
	fd.Totals.Nodes = len(views)
	for _, v := range views {
		if v.Ready {
			fd.Totals.NodesReady++
		}
		if v.Debug == nil {
			continue
		}
		fd.Totals.QueueDepth += v.Debug.Stats.QueueDepth
		fd.Totals.QueueCap += v.Debug.Stats.QueueCap
		fd.Totals.Inflight += v.Debug.Stats.Inflight
		fd.Totals.Stalled += v.Debug.Stalled
		fd.Totals.WALReplayed += v.Debug.Replayed
		fd.Totals.Completed += v.Debug.Completed
		fd.Totals.Cached += v.Debug.Cached
		fd.Totals.Deduped += v.Debug.Deduped
		if v.Debug.WAL != nil {
			fd.Totals.WALPending += v.Debug.WAL.Pending
		}
	}
	fd.Router = RouterView{
		Forwarded:     rt.metrics.Counter("fleet.router.forwarded"),
		Retries:       rt.metrics.Counter("fleet.router.retries"),
		ForwardErrors: rt.metrics.Counter("fleet.router.forward_errors"),
		Exhausted:     rt.metrics.Counter("fleet.router.exhausted"),
		QuotaRejected: rt.metrics.Counter("fleet.router.quota_rejected"),
		ShedBatch:     rt.metrics.Counter("fleet.router.shed_batch"),
	}
	return fd
}

// nodeView fetches one member's /debugz/node, falling back to the
// router's last probe state when the node does not answer.
func (rt *Router) nodeView(ctx context.Context, m *member) FleetNodeView {
	reach, rdy, _, lastErr := m.snapshot()
	view := FleetNodeView{Name: m.name, Base: m.base, Reachable: reach, Ready: rdy, Error: lastErr}
	cctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, m.base+"/debugz/node", nil)
	if err != nil {
		view.Error = err.Error()
		return view
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		view.Reachable = false
		view.Error = err.Error()
		return view
	}
	defer resp.Body.Close()
	var nd NodeDebug
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&nd); err != nil {
		view.Error = "decode: " + err.Error()
		return view
	}
	view.Reachable = true
	view.Ready = nd.Stats.Ready
	view.Debug = &nd
	return view
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Fleet(r.Context()))
}
