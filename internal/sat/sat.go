// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation,
// first-UIP conflict analysis, VSIDS-style activity branching with phase
// saving, Luby restarts, learned-clause reduction, and solving under
// assumptions. Assumptions make the solver incrementally reusable, which
// the repair synthesizer relies on for its minimal-change search.
package sat

import (
	"errors"
	"sync/atomic"
	"time"

	"rtlrepair/internal/obs"
)

// Lit is a literal: variable index shifted left once, low bit 1 for the
// negated polarity. Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v, negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return MkLit(v, true) }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrTimeout is returned by Solve when the configured deadline expires.
var ErrTimeout = errors.New("sat: timeout")

// ErrInterrupted is returned by Solve when the Interrupt flag is set by
// another goroutine (e.g. a portfolio worker being cancelled because a
// sibling already found an acceptable repair).
var ErrInterrupted = errors.New("sat: interrupted")

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  []*clause
	learnts  []*clause
	watches  [][]watcher // indexed by literal
	assigns  []lbool     // indexed by var
	phase    []bool      // saved phase, indexed by var
	level    []int       // decision level per var
	reason   []*clause   // antecedent per var
	trail    []Lit
	trailLim []int
	qhead    int

	activity  []float64
	varInc    float64
	heap      *varHeap
	claInc    float64
	seen      []bool
	conflicts int64
	decisions int64
	props     int64
	restarts  int64
	learned   int64 // learned clauses ever derived (incl. units)
	added     int64 // original clauses accepted by AddClause

	// proof, when non-nil, records a DRUP log of clause additions and
	// deletions (see drat.go). Enabled with StartProof.
	proof *Proof

	// share, when non-nil, connects the solver to a clause-sharing room
	// (see share.go). Set with SetShare.
	share          *Endpoint
	sharedExported int64
	sharedImported int64
	sharedRejected int64

	assumptionLevel int
	failed          []Lit

	ok       bool // false once an empty clause is derived at level 0
	Deadline time.Time
	// Interrupt, when non-nil, is polled during search; setting it true
	// makes Solve return (Unknown, ErrInterrupted). It is the only field
	// another goroutine may touch while Solve runs.
	Interrupt *atomic.Bool
	// Obs positions the solver in the observability layer: each Solve
	// call records one "sat.solve" span under Obs.Span with the search
	// counter deltas, and restarts tick the "sat.restarts" counter. The
	// zero Scope (the default) disables all of it; the hot loop then pays
	// only nil checks on the rare restart path (see BenchmarkNilTracer).
	//
	// When Obs.Rec is set (the always-on flight recorder), each Solve
	// additionally registers a live SolverCell — updated with atomic
	// heartbeats from the periodic poll block, surfaced by
	// /debugz/solvers and the stall watchdog — and emits a "heartbeat"
	// ring event every heartbeatConflicts conflicts. Emission is keyed
	// on the cumulative conflict count, not wall clock, so the event
	// multiset is deterministic across worker counts (see
	// TestRecorderOverheadBudget for the pinned ≤2% cost).
	Obs obs.Scope
}

// heartbeatConflicts is the ring-event cadence: one heartbeat per this
// many conflicts. Power of two so the hot-loop check is a mask.
const heartbeatConflicts = 1024

// heartbeat publishes the live counters onto the cell and, at conflict
// milestones, into the flight-recorder ring.
func (s *Solver) heartbeat(cell *obs.SolverCell, emit bool) {
	cell.Beat(s.conflicts, s.decisions, s.props, s.learned)
	if emit {
		s.Obs.Rec.Emit(obs.EvHeartbeat, "sat.solve", s.Obs.Label, s.Obs.Worker,
			obs.Int("conflicts", s.conflicts),
			obs.Int("decisions", s.decisions),
			obs.Int("propagations", s.props),
			obs.Int("learned", s.learned),
			obs.Int("restarts", s.restarts))
	}
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NumVars reports the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		return a.neg()
	}
	return a
}

// AddClause adds a clause. Returns false if the formula became trivially
// unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.proof != nil {
		// Log the verbatim clause as an axiom, before normalization: the
		// checker must start from what the caller asserted, not from the
		// solver's simplified form.
		s.proof.add(StepOrig, lits)
	}
	s.added++
	if !s.ok {
		return false
	}
	s.backtrackTo(0)
	s.assumptionLevel = 0
	// Normalize: sort-free dedup, drop false literals, detect tautology.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.props++
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // reserve slot for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var marked []int

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				marked = append(marked, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Simplify: remove literals implied by the rest (local minimization).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		redundant := false
		if r != nil {
			redundant = true
			for _, q := range r.lits {
				if q.Var() == v {
					continue
				}
				if !s.seenOrLevel0(q) {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Find backtrack level: max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, v := range marked {
		s.seen[v] = false
	}
	return learnt, btLevel
}

func (s *Solver) seenOrLevel0(q Lit) bool {
	// Mark-based check used during minimization: literal q is redundant
	// support if it is already in the learnt set (seen) or fixed at the
	// root level.
	return s.seen[q.Var()] || s.level[q.Var()] == 0
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, cl := range s.learnts {
			cl.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.heap.insertIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.heap.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// luby computes the Luby restart sequence element i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Drop the lower-activity half of learnt clauses (keep binary ones
	// and reasons).
	sorted := make([]*clause, len(s.learnts))
	copy(sorted, s.learnts)
	// Simple insertion-style partial sort by activity ascending.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].activity < sorted[j-1].activity; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	locked := map[*clause]bool{}
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	removed := map[*clause]bool{}
	for _, c := range sorted[:len(sorted)/2] {
		if len(c.lits) <= 2 || locked[c] {
			continue
		}
		removed[c] = true
	}
	if len(removed) == 0 {
		return
	}
	if s.proof != nil {
		for c := range removed {
			s.proof.add(StepDelete, c.lits)
		}
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !removed[c] {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	for li := range s.watches {
		ws := s.watches[li][:0]
		for _, w := range s.watches[li] {
			if !removed[w.c] {
				ws = append(ws, w)
			}
		}
		s.watches[li] = ws
	}
}

// Solve searches for a model extending the given assumptions. On Sat the
// model can be read with Value. On Unsat under assumptions, the conflict
// subset is available via FailedAssumptions.
func (s *Solver) Solve(assumptions ...Lit) (st Status, err error) {
	if span := s.Obs.Tracer.Start(s.Obs.Span, "sat.solve"); span != nil {
		span.SetInt("assumptions", int64(len(assumptions)))
		span.SetInt("cnf_vars", int64(len(s.assigns)))
		span.SetInt("cnf_clauses", s.added)
		before := s.Statistics()
		defer func() {
			after := s.Statistics()
			span.SetStr("result", st.String())
			span.SetInt("conflicts", after.Conflicts-before.Conflicts)
			span.SetInt("decisions", after.Decisions-before.Decisions)
			span.SetInt("propagations", after.Propagations-before.Propagations)
			span.SetInt("restarts", after.Restarts-before.Restarts)
			span.SetInt("learned", after.Learned-before.Learned)
			span.End()
		}()
	}
	// Flight recorder: a live cell for /debugz/solvers and the stall
	// watchdog. Registered per Solve call so the cell's lifetime is
	// exactly "a search is running"; a solver stuck inside this call is
	// a cell whose heartbeat goes quiet.
	var cell *obs.SolverCell
	if rec := s.Obs.Rec; rec != nil {
		cell = rec.RegisterSolver(s.Obs.Label, s.Obs.Worker)
		cell.SetCNF(int64(len(s.assigns)), s.added)
		defer func() {
			s.heartbeat(cell, false)
			cell.Close()
		}()
	}
	if !s.ok {
		return Unsat, nil
	}
	s.backtrackTo(0)
	s.failed = nil
	s.assumptionLevel = 0
	// Deterministic import point #1: Solve entry, at decision level 0.
	// Room content here depends only on what room members published
	// before this call — schedule-independent when the room is confined
	// to one sequential solver lineage.
	if s.share != nil {
		s.importShared()
		if !s.ok {
			return Unsat, nil
		}
		if s.propagate() != nil {
			s.ok = false
			return Unsat, nil
		}
	}

	restarts := int64(0)
	conflictBudget := int64(100) * luby(1)
	conflictsAtRestart := s.conflicts
	checkCounter := 0

	for {
		// Poll cancellation and the deadline on both the conflict and the
		// decision path: a conflict-heavy search must still notice that a
		// portfolio sibling won or that the budget expired.
		checkCounter++
		if checkCounter&1023 == 0 {
			if s.Interrupt != nil && s.Interrupt.Load() {
				return Unknown, ErrInterrupted
			}
			if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
				return Unknown, ErrTimeout
			}
			if cell != nil {
				// Atomic stores only — the poll block stays lock-free.
				s.heartbeat(cell, false)
			}
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if cell != nil && s.conflicts&(heartbeatConflicts-1) == 0 {
				// Ring heartbeat at a conflict milestone: cumulative
				// counts are deterministic per solver lineage, so
				// scrubbed ring dumps stay byte-identical across worker
				// counts.
				s.heartbeat(cell, true)
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, nil
			}
			// Fail if conflict is at or below the assumption levels: we
			// must analyze whether assumptions are to blame.
			learnt, btLevel := s.analyze(confl)
			s.learned++
			if s.proof != nil {
				s.proof.add(StepLearn, learnt)
			}
			if s.share != nil && len(learnt) <= MaxSharedLen {
				// Export before the clause is attached: attach mutates the
				// literal order in place, publish copies.
				if s.share.publish(learnt) {
					s.sharedExported++
				}
			}
			if btLevel < s.assumptionLevel {
				btLevel = s.assumptionLevel
				// If the asserting literal conflicts with assumptions we
				// may loop; detect by checking enqueue below.
			}
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				s.backtrackTo(0)
				if !s.enqueue(learnt[0], nil) {
					s.ok = false
					return Unsat, nil
				}
				// Re-establish assumptions after a root-level restart.
				if st, done := s.reassume(assumptions); done {
					return st, nil
				}
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				if !s.enqueue(learnt[0], c) {
					// Asserting literal false at assumption level →
					// assumptions are inconsistent with the formula.
					s.computeFailed(assumptions)
					return Unsat, nil
				}
			}
			s.varInc *= 1.052
			s.claInc *= 1.001
			continue
		}

		if s.conflicts-conflictsAtRestart >= conflictBudget {
			restarts++
			s.restarts++
			s.Obs.Metrics.Add("sat.restarts", 1)
			conflictBudget = 100 * luby(restarts+1)
			conflictsAtRestart = s.conflicts
			s.backtrackTo(s.assumptionLevel)
			// Deterministic import point #2: restarts. Only pay the full
			// backtrack when the room actually has foreign clauses.
			if s.share != nil && s.share.pending() {
				s.backtrackTo(0)
				s.importShared()
				if !s.ok {
					return Unsat, nil
				}
				if st, done := s.reassume(assumptions); done {
					return st, nil
				}
			}
			if len(s.learnts) > 4000+len(s.clauses) {
				s.backtrackTo(0)
				s.reduceDB()
				if st, done := s.reassume(assumptions); done {
					return st, nil
				}
				continue
			}
		}

		// Extend assumptions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.assumptionLevel = s.decisionLevel()
				continue
			case lFalse:
				s.computeFailed(assumptions)
				return Unsat, nil
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, nil)
			s.assumptionLevel = s.decisionLevel()
			continue
		}

		v := s.pickBranchVar()
		if v == -1 {
			return Sat, nil
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// reassume replays assumption decisions after a restart to level 0.
// It returns (status, true) if solving is already decided.
func (s *Solver) reassume([]Lit) (Status, bool) {
	s.assumptionLevel = 0
	if s.propagate() != nil {
		s.ok = false
		return Unsat, true
	}
	return Unknown, false
}

// computeFailed records which assumptions were contradicted. We keep it
// simple: report all assumptions that are currently assigned false.
func (s *Solver) computeFailed(assumptions []Lit) {
	s.failed = nil
	for _, a := range assumptions {
		if s.value(a) == lFalse {
			s.failed = append(s.failed, a)
		}
	}
}

// FailedAssumptions returns assumptions found inconsistent in the last
// Unsat answer (possibly empty when the formula itself is Unsat).
func (s *Solver) FailedAssumptions() []Lit { return s.failed }

// Value reports the model value of variable v after a Sat answer.
func (s *Solver) Value(v int) bool { return s.assigns[v] == lTrue }

// Stats reports search statistics.
func (s *Solver) Stats() (conflicts, decisions, propagations int64) {
	return s.conflicts, s.decisions, s.props
}

// Statistics is a full snapshot of the solver's search counters.
type Statistics struct {
	Conflicts    int64 // conflicts hit during search
	Decisions    int64 // branching decisions made
	Propagations int64 // literals propagated
	Restarts     int64 // Luby restarts performed
	Learned      int64 // learned clauses ever derived (incl. units)
	LearnedLive  int64 // learned clauses currently in the database
	Clauses      int64 // original clauses accepted by AddClause
	Vars         int64 // allocated variables

	// Clause-sharing counters (zero unless SetShare was used).
	SharedExported int64 // short learned clauses published to the room
	SharedImported int64 // foreign clauses admitted after RUP verification
	SharedRejected int64 // foreign clauses refused (unknown vars, redundant, or not RUP)
}

// Statistics returns a snapshot of every search counter, including the
// clause-database sizes the three-value Stats() omits.
func (s *Solver) Statistics() Statistics {
	return Statistics{
		Conflicts:    s.conflicts,
		Decisions:    s.decisions,
		Propagations: s.props,
		Restarts:     s.restarts,
		Learned:      s.learned,
		LearnedLive:  int64(len(s.learnts)),
		Clauses:      s.added,
		Vars:         int64(len(s.assigns)),

		SharedExported: s.sharedExported,
		SharedImported: s.sharedImported,
		SharedRejected: s.sharedRejected,
	}
}

// Add merges another snapshot into this one (database sizes and counters
// both sum; used to aggregate across a synthesis run's solvers).
func (st *Statistics) Add(o Statistics) {
	st.Conflicts += o.Conflicts
	st.Decisions += o.Decisions
	st.Propagations += o.Propagations
	st.Restarts += o.Restarts
	st.Learned += o.Learned
	st.LearnedLive += o.LearnedLive
	st.Clauses += o.Clauses
	st.Vars += o.Vars
	st.SharedExported += o.SharedExported
	st.SharedImported += o.SharedImported
	st.SharedRejected += o.SharedRejected
}
