package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds a submission body (designs plus long traces).
const maxBodyBytes = 64 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/repair             submit a job (``?wait=1`` blocks until done)
//	GET  /v1/jobs/{id}          poll a job (``?wait=1`` blocks until done)
//	GET  /v1/jobs/{id}/events   stream the job's flight-recorder events (SSE)
//	GET  /healthz               queue stats (503 once draining)
//	GET  /healthz/live          liveness: 200 while the process runs
//	GET  /healthz/ready         readiness: 503 while draining or WAL-replaying
//	GET  /metricsz              the obs metrics registry as JSON
//	GET  /debugz/spans          live span tree (what is in flight right now)
//	GET  /debugz/ring           flight-recorder ring dump as JSONL (?scope=)
//	GET  /debugz/solvers        live SAT searches + stalled-job watchdog
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repair", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /healthz/live", s.handleLive)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /metricsz", s.handleMetrics)
	mux.HandleFunc("GET /debugz/spans", s.handleDebugSpans)
	mux.HandleFunc("GET /debugz/ring", s.handleDebugRing)
	mux.HandleFunc("GET /debugz/solvers", s.handleDebugSolvers)
	return mux
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"body: " + err.Error()})
		return
	}
	job, err := s.Submit(&req)
	switch {
	case err == nil:
	case IsBadRequest(err):
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		// Estimate how long the queue needs to drain a slot instead of
		// telling every client "1": depth × mean job time ÷ slots.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorJSON{err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	s.respondJob(w, r, job, true)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{"unknown job"})
		return
	}
	s.respondJob(w, r, job, false)
}

// respondJob renders a job, optionally blocking (?wait=1) until it is
// terminal or the client goes away. Submissions answer 202 while the
// job is still in flight and 200 once it is done.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, job *Job, submitted bool) {
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
		}
	}
	v := job.View()
	status := http.StatusOK
	if submitted {
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		if v.State != StateDone {
			status = http.StatusAccepted
		}
	}
	writeJSON(w, status, v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.Snapshot()
	status := http.StatusOK
	if st.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

// handleLive is the liveness probe: 200 as long as the process serves
// HTTP at all — even while draining, so an orchestrator does not kill a
// node that is finishing accepted jobs.
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady is the readiness probe: 503 while draining or while a
// fleet node is replaying its write-ahead log, so routers and external
// load balancers stop sending new work without declaring the node dead.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	st := s.Snapshot()
	status := http.StatusOK
	if !st.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w)
}
