package smt

import (
	"testing"

	"rtlrepair/internal/bv"
	"rtlrepair/internal/sat"
)

// fuzzWidth keeps blasted instances small: multiplication and division
// gates are quadratic in the width.
const fuzzWidth = 6

// buildFuzzTerm interprets data as a stack-machine program over three
// fuzzWidth-bit variables and returns the resulting term plus a concrete
// environment (also taken from data). Every operator the blaster handles
// is reachable; width-1 intermediates are zero-extended back so the
// stack stays uniform.
func buildFuzzTerm(ctx *Context, data []byte) (*Term, map[*Term]bv.BV) {
	if len(data) < 4 {
		return nil, nil
	}
	vars := []*Term{ctx.Var("a", fuzzWidth), ctx.Var("b", fuzzWidth), ctx.Var("c", fuzzWidth)}
	env := map[*Term]bv.BV{}
	for i, v := range vars {
		env[v] = bv.New(fuzzWidth, uint64(data[i]))
	}
	stack := append([]*Term{}, vars...)
	pop := func() *Term {
		t := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return t
	}
	steps := 0
	for i := 3; i+1 < len(data) && steps < 24; i += 2 {
		steps++
		op, arg := data[i], data[i+1]
		x := pop()
		y := stack[len(stack)-1]
		var r *Term
		switch op % 22 {
		case 0:
			r = ctx.Add(x, y)
		case 1:
			r = ctx.Sub(x, y)
		case 2:
			r = ctx.Mul(x, y)
		case 3:
			r = ctx.Udiv(x, y)
		case 4:
			r = ctx.Urem(x, y)
		case 5:
			r = ctx.And(x, y)
		case 6:
			r = ctx.Or(x, y)
		case 7:
			r = ctx.Xor(x, y)
		case 8:
			r = ctx.Not(x)
		case 9:
			r = ctx.Neg(x)
		case 10:
			r = ctx.Shl(x, y)
		case 11:
			r = ctx.Lshr(x, y)
		case 12:
			r = ctx.Ashr(x, y)
		case 13: // shift by an unbounded constant amount
			r = ctx.Shl(x, ctx.ConstU(fuzzWidth, uint64(arg)%(2*fuzzWidth)))
		case 14:
			r = ctx.ZeroExt(ctx.Eq(x, y), fuzzWidth)
		case 15:
			r = ctx.ZeroExt(ctx.Ult(x, y), fuzzWidth)
		case 16:
			r = ctx.ZeroExt(ctx.Slt(x, y), fuzzWidth)
		case 17:
			r = ctx.Ite(ctx.Truthy(x), y, ctx.ConstU(fuzzWidth, uint64(arg)))
		case 18:
			hi := int(arg) % fuzzWidth
			r = ctx.ZeroExt(ctx.Extract(x, hi, 0), fuzzWidth)
		case 19:
			half := fuzzWidth / 2
			r = ctx.Concat(ctx.Extract(x, half-1, 0), ctx.Extract(y, fuzzWidth-1, half))
		case 20:
			r = ctx.SignExt(ctx.Extract(x, fuzzWidth/2, 0), fuzzWidth)
		case 21:
			r = ctx.ZeroExt(ctx.RedXor(x), fuzzWidth)
		}
		stack = append(stack, r)
	}
	return stack[len(stack)-1], env
}

// FuzzBlastVsEval differentially tests the bit-blaster (with and
// without absint simplification) against the reference interpreter: for
// a random term t and environment e, the solver with all variables
// pinned to e must find t = eval(t,e) satisfiable and t ≠ eval(t,e)
// unsatisfiable — the latter with a checked DRUP certificate.
func FuzzBlastVsEval(f *testing.F) {
	f.Add([]byte{17, 42, 63, 0, 1, 2, 3, 10, 200, 3, 0})
	f.Add([]byte{0, 0, 0, 3, 0, 3, 1, 4, 2, 13, 9})
	f.Add([]byte{255, 255, 255, 12, 7, 10, 63, 2, 2, 16, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := NewContext()
		term, env := buildFuzzTerm(ctx, data)
		if term == nil {
			return
		}
		want := NewEvaluator(func(v *Term) bv.BV { return env[v] }).Eval(term)

		for _, disable := range []bool{false, true} {
			s := NewSolver(ctx)
			if disable {
				s.DisableSimplify()
			} else {
				s.EnableCertification()
			}
			for v, val := range env {
				s.Assert(ctx.Eq(v, ctx.Const(val)))
			}
			st, err := s.Check(ctx.Eq(term, ctx.Const(want)))
			if err != nil || st != sat.Sat {
				t.Fatalf("disable=%v: t == eval(t): %v %v", disable, st, err)
			}
			st, err = s.Check(ctx.Ne(term, ctx.Const(want)))
			if err != nil || st != sat.Unsat {
				t.Fatalf("disable=%v: t != eval(t) must be unsat: %v %v", disable, st, err)
			}
		}
	})
}

// FuzzAbsintSound checks the abstract domains against the concrete
// semantics: facts constructed around the environment value must admit
// it after every transfer, and simplification under those facts must
// preserve the term's value in that environment.
func FuzzAbsintSound(f *testing.F) {
	f.Add([]byte{17, 42, 63, 0, 1, 2, 3, 10, 200, 3, 0}, byte(0x0F), byte(2))
	f.Add([]byte{9, 30, 5, 5, 1, 17, 200, 11, 8, 14, 3}, byte(0xAA), byte(0))
	f.Add([]byte{255, 0, 31, 2, 9, 4, 63, 21, 7, 19, 1}, byte(0xFF), byte(7))
	f.Fuzz(func(t *testing.T, data []byte, mask, slack byte) {
		ctx := NewContext()
		term, env := buildFuzzTerm(ctx, data)
		if term == nil {
			return
		}
		a := NewAbs()
		for v, val := range env {
			// Facts derived FROM the concrete value are sound by
			// construction: mask some bits as known, widen the interval
			// by `slack` on each side (saturating).
			known := bv.New(fuzzWidth, uint64(mask))
			d := bv.New(fuzzWidth, uint64(slack))
			lo := bv.Zero(fuzzWidth)
			if !val.Ult(d) {
				lo = val.Sub(d)
			}
			hi := val.Add(d)
			if hi.Ult(val) {
				hi = bv.Ones(fuzzWidth)
			}
			fact := Fact{Known: known, Val: val.And(known), Lo: lo, Hi: hi}.normalize()
			if !fact.Admits(val) {
				t.Fatalf("constructed fact excludes its own value: %+v vs %s", fact, val)
			}
			a.Learn(v, fact)
		}
		ev := NewEvaluator(func(v *Term) bv.BV { return env[v] })
		concrete := ev.Eval(term)
		if fact := a.Fact(term); !fact.Admits(concrete) {
			t.Fatalf("transfer result %+v excludes concrete value %s", fact, concrete)
		}
		simplified := ctx.Simplify(term, a, map[*Term]*Term{})
		if got := ev.Eval(simplified); !got.Eq(concrete) {
			t.Fatalf("simplification changed the value: %s -> %s", concrete, got)
		}
	})
}
