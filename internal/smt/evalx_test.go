package smt

import (
	"math/rand"
	"testing"

	"rtlrepair/internal/bv"
)

// TestEvalXMatchesEvalOnKnownInputs: with fully-known variable values the
// 4-state evaluator must agree exactly with the 2-state evaluator on
// random terms.
func TestEvalXMatchesEvalOnKnownInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		c := NewContext()
		w := 1 + rng.Intn(10)
		vars := []*Term{c.Var("a", w), c.Var("b", w), c.Var("d", w)}
		term := randTerm(c, rng, vars, 4)
		env := map[*Term]bv.BV{}
		for _, v := range vars {
			env[v] = bv.New(w, rng.Uint64())
		}
		want := Eval(term, func(v *Term) bv.BV { return env[v] })
		got := EvalX(term, func(v *Term) bv.XBV { return bv.K(env[v]) })
		if !got.IsFullyKnown() {
			t.Fatalf("iter %d: fully-known inputs produced X: %v for %v", iter, got, term)
		}
		if !got.Val.Eq(want) {
			t.Fatalf("iter %d: EvalX %v != Eval %v for %v", iter, got.Val, want, term)
		}
	}
}

// TestEvalXSoundness: every completion of the unknown bits must be
// consistent with the 4-state result (bits EvalX claims known must have
// that value for all completions of the inputs).
func TestEvalXSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 200; iter++ {
		c := NewContext()
		w := 1 + rng.Intn(5) // small width: exhaustive completions
		vars := []*Term{c.Var("a", w), c.Var("b", w)}
		term := randTerm(c, rng, vars, 3)

		// Random partially-known inputs.
		envX := map[*Term]bv.XBV{}
		for _, v := range vars {
			envX[v] = bv.XBV{
				Val:   bv.New(w, rng.Uint64()),
				Known: bv.New(w, rng.Uint64()),
			}.Resize(w)
			// normalize val to known bits
			x := envX[v]
			envX[v] = bv.XBV{Val: x.Val.And(x.Known), Known: x.Known}
		}
		approx := EvalX(term, func(v *Term) bv.XBV { return envX[v] })

		// Enumerate a sample of completions and check consistency.
		for trial := 0; trial < 16; trial++ {
			env := map[*Term]bv.BV{}
			for _, v := range vars {
				fill := bv.New(w, rng.Uint64())
				env[v] = envX[v].Resolve(fill)
			}
			exact := Eval(term, func(v *Term) bv.BV { return env[v] })
			// Every bit approx claims to know must match.
			mask := approx.Known
			if !exact.And(mask).Eq(approx.Val.And(mask)) {
				t.Fatalf("iter %d: EvalX unsound: claims %v (known %v), completion gives %v for %v",
					iter, approx.Val, approx.Known, exact, term)
			}
		}
	}
}

// TestEvalXLogicPrecision: X-propagation through logic gates keeps
// controlled bits known.
func TestEvalXLogicPrecision(t *testing.T) {
	c := NewContext()
	a := c.Var("a", 4)
	b := c.Var("b", 4)
	envX := func(v *Term) bv.XBV {
		if v == a {
			return bv.KU(4, 0b0011)
		}
		return bv.X(4)
	}
	// a & b: bits where a=0 are known 0.
	got := EvalX(c.And(a, b), envX)
	if !got.Known.Eq(bv.New(4, 0b1100)) || !got.Val.IsZero() {
		t.Fatalf("a&b = %v, want xx00 with high bits known 0", got)
	}
	// a | b: bits where a=1 are known 1.
	got = EvalX(c.Or(a, b), envX)
	if !got.Known.Eq(bv.New(4, 0b0011)) || !got.Val.Eq(bv.New(4, 0b0011)) {
		t.Fatalf("a|b = %v", got)
	}
	// ITE with unknown condition merges branches.
	got = EvalX(c.Ite(c.Extract(b, 0, 0), a, a), envX)
	if !got.IsFullyKnown() {
		t.Fatalf("ite(x, a, a) should be a: %v", got)
	}
}

// TestEvalXIteMerge: an unknown condition keeps agreeing bits.
func TestEvalXIteMerge(t *testing.T) {
	c := NewContext()
	cond := c.Var("c", 1)
	envX := func(v *Term) bv.XBV { return bv.X(1) }
	t1 := c.ConstU(4, 0b1010)
	t2 := c.ConstU(4, 0b1001)
	got := EvalX(c.Ite(cond, t1, t2), envX)
	// Bits 3 (1=1) and 2 (0=0) agree; bits 1,0 differ.
	if !got.Known.Eq(bv.New(4, 0b1100)) {
		t.Fatalf("merge known = %v, want 1100", got.Known)
	}
	if !got.Val.Eq(bv.New(4, 0b1000)) {
		t.Fatalf("merge val = %v", got.Val)
	}
}
