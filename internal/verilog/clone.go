package verilog

import "fmt"

// CloneModule returns a deep copy of a module. Repair templates and the
// CirFix-style baseline mutate clones, never the parsed original.
func CloneModule(m *Module) *Module {
	out := &Module{Pos: m.Pos, Name: m.Name, Ports: append([]string{}, m.Ports...)}
	for _, it := range m.Items {
		out.Items = append(out.Items, cloneItem(it))
	}
	return out
}

func cloneItem(it Item) Item {
	switch it := it.(type) {
	case *Decl:
		c := *it
		c.MSB, c.LSB, c.Init = cloneExpr(it.MSB), cloneExpr(it.LSB), cloneExpr(it.Init)
		c.ArrMSB, c.ArrLSB = cloneExpr(it.ArrMSB), cloneExpr(it.ArrLSB)
		return &c
	case *Param:
		c := *it
		c.MSB, c.LSB, c.Value = cloneExpr(it.MSB), cloneExpr(it.LSB), cloneExpr(it.Value)
		return &c
	case *ContAssign:
		return &ContAssign{Pos: it.Pos, LHS: cloneExpr(it.LHS), RHS: cloneExpr(it.RHS)}
	case *Always:
		return &Always{Pos: it.Pos, Star: it.Star, Senses: append([]SenseItem{}, it.Senses...), Body: CloneStmt(it.Body)}
	case *Initial:
		return &Initial{Pos: it.Pos, Body: CloneStmt(it.Body)}
	case *Instance:
		c := &Instance{Pos: it.Pos, ModName: it.ModName, Name: it.Name}
		for _, pc := range it.Params {
			c.Params = append(c.Params, PortConn{Name: pc.Name, Expr: cloneExpr(pc.Expr)})
		}
		for _, pc := range it.Conns {
			c.Conns = append(c.Conns, PortConn{Name: pc.Name, Expr: cloneExpr(pc.Expr)})
		}
		return c
	}
	panic(fmt.Sprintf("verilog: clone of unknown item %T", it))
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch s := s.(type) {
	case *Block:
		c := &Block{Pos: s.Pos, Name: s.Name}
		for _, inner := range s.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(inner))
		}
		return c
	case *If:
		return &If{Pos: s.Pos, Cond: cloneExpr(s.Cond), Then: CloneStmt(s.Then), Else: CloneStmt(s.Else)}
	case *Case:
		c := &Case{Pos: s.Pos, Kind: s.Kind, Subject: cloneExpr(s.Subject)}
		for _, item := range s.Items {
			ci := CaseItem{Body: CloneStmt(item.Body)}
			for _, e := range item.Exprs {
				ci.Exprs = append(ci.Exprs, cloneExpr(e))
			}
			c.Items = append(c.Items, ci)
		}
		return c
	case *Assign:
		return &Assign{Pos: s.Pos, LHS: cloneExpr(s.LHS), RHS: cloneExpr(s.RHS), Blocking: s.Blocking, Delay: cloneExpr(s.Delay)}
	case *For:
		return &For{Pos: s.Pos, Var: s.Var, Init: cloneExpr(s.Init),
			Cond: cloneExpr(s.Cond), Step: cloneExpr(s.Step), Body: CloneStmt(s.Body)}
	case *NullStmt:
		return &NullStmt{Pos: s.Pos}
	}
	panic(fmt.Sprintf("verilog: clone of unknown stmt %T", s))
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr { return cloneExpr(e) }

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Ident:
		c := *e
		return &c
	case *Number:
		c := *e
		return &c
	case *Unary:
		return &Unary{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X)}
	case *Binary:
		return &Binary{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X), Y: cloneExpr(e.Y)}
	case *Ternary:
		return &Ternary{Pos: e.Pos, Cond: cloneExpr(e.Cond), Then: cloneExpr(e.Then), Else: cloneExpr(e.Else)}
	case *Concat:
		c := &Concat{Pos: e.Pos}
		for _, p := range e.Parts {
			c.Parts = append(c.Parts, cloneExpr(p))
		}
		return c
	case *Repeat:
		c := &Repeat{Pos: e.Pos, Count: cloneExpr(e.Count)}
		for _, p := range e.Parts {
			c.Parts = append(c.Parts, cloneExpr(p))
		}
		return c
	case *Index:
		return &Index{Pos: e.Pos, X: cloneExpr(e.X), Idx: cloneExpr(e.Idx)}
	case *PartSelect:
		return &PartSelect{Pos: e.Pos, X: cloneExpr(e.X), MSB: cloneExpr(e.MSB), LSB: cloneExpr(e.LSB)}
	case *SynthHole:
		c := *e
		return &c
	}
	panic(fmt.Sprintf("verilog: clone of unknown expr %T", e))
}

// WalkExprs calls f for every expression in the module, depth-first.
// If f returns false, the walk does not descend into that expression.
func WalkExprs(m *Module, f func(Expr) bool) {
	for _, it := range m.Items {
		switch it := it.(type) {
		case *Decl:
			walkExpr(it.Init, f)
		case *Param:
			walkExpr(it.Value, f)
		case *ContAssign:
			walkExpr(it.LHS, f)
			walkExpr(it.RHS, f)
		case *Always:
			WalkStmtExprs(it.Body, f)
		case *Initial:
			WalkStmtExprs(it.Body, f)
		case *Instance:
			for _, c := range it.Conns {
				walkExpr(c.Expr, f)
			}
		}
	}
}

// WalkStmtExprs calls f for every expression under a statement.
func WalkStmtExprs(s Stmt, f func(Expr) bool) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *Block:
		for _, inner := range s.Stmts {
			WalkStmtExprs(inner, f)
		}
	case *If:
		walkExpr(s.Cond, f)
		WalkStmtExprs(s.Then, f)
		WalkStmtExprs(s.Else, f)
	case *Case:
		walkExpr(s.Subject, f)
		for _, item := range s.Items {
			for _, e := range item.Exprs {
				walkExpr(e, f)
			}
			WalkStmtExprs(item.Body, f)
		}
	case *Assign:
		walkExpr(s.LHS, f)
		walkExpr(s.RHS, f)
	case *For:
		walkExpr(s.Init, f)
		walkExpr(s.Cond, f)
		walkExpr(s.Step, f)
		WalkStmtExprs(s.Body, f)
	}
}

func walkExpr(e Expr, f func(Expr) bool) {
	if e == nil {
		return
	}
	if !f(e) {
		return
	}
	switch e := e.(type) {
	case *Unary:
		walkExpr(e.X, f)
	case *Binary:
		walkExpr(e.X, f)
		walkExpr(e.Y, f)
	case *Ternary:
		walkExpr(e.Cond, f)
		walkExpr(e.Then, f)
		walkExpr(e.Else, f)
	case *Concat:
		for _, p := range e.Parts {
			walkExpr(p, f)
		}
	case *Repeat:
		walkExpr(e.Count, f)
		for _, p := range e.Parts {
			walkExpr(p, f)
		}
	case *Index:
		walkExpr(e.X, f)
		walkExpr(e.Idx, f)
	case *PartSelect:
		walkExpr(e.X, f)
		walkExpr(e.MSB, f)
		walkExpr(e.LSB, f)
	}
}

// WalkStmts calls f for every statement in the module, depth-first,
// including nested ones. The enclosing Always (or Initial as nil) is
// passed along for context.
func WalkStmts(m *Module, f func(s Stmt, parent *Always)) {
	for _, it := range m.Items {
		switch it := it.(type) {
		case *Always:
			walkStmt(it.Body, it, f)
		case *Initial:
			walkStmt(it.Body, nil, f)
		}
	}
}

func walkStmt(s Stmt, parent *Always, f func(Stmt, *Always)) {
	if s == nil {
		return
	}
	f(s, parent)
	switch s := s.(type) {
	case *Block:
		for _, inner := range s.Stmts {
			walkStmt(inner, parent, f)
		}
	case *If:
		walkStmt(s.Then, parent, f)
		walkStmt(s.Else, parent, f)
	case *Case:
		for _, item := range s.Items {
			walkStmt(item.Body, parent, f)
		}
	case *For:
		walkStmt(s.Body, parent, f)
	}
}

// RewriteExprs rewrites every expression in the module bottom-up using f.
// f receives each node after its children were rewritten and returns the
// replacement (usually the node itself).
func RewriteExprs(m *Module, f func(Expr) Expr) {
	for _, it := range m.Items {
		switch it := it.(type) {
		case *ContAssign:
			it.RHS = rewriteExpr(it.RHS, f)
		case *Always:
			rewriteStmtExprs(it.Body, f)
		case *Initial:
			rewriteStmtExprs(it.Body, f)
		}
	}
}

// RewriteStmtExprs rewrites expressions under one statement bottom-up.
// Left-hand sides of assignments are not rewritten (templates never
// change assignment targets).
func RewriteStmtExprs(s Stmt, f func(Expr) Expr) { rewriteStmtExprs(s, f) }

func rewriteStmtExprs(s Stmt, f func(Expr) Expr) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *Block:
		for _, inner := range s.Stmts {
			rewriteStmtExprs(inner, f)
		}
	case *If:
		s.Cond = rewriteExpr(s.Cond, f)
		rewriteStmtExprs(s.Then, f)
		rewriteStmtExprs(s.Else, f)
	case *Case:
		s.Subject = rewriteExpr(s.Subject, f)
		for i := range s.Items {
			rewriteStmtExprs(s.Items[i].Body, f)
		}
	case *Assign:
		s.RHS = rewriteExpr(s.RHS, f)
	case *For:
		// Init/Cond/Step stay constant (they must remain unrollable).
		rewriteStmtExprs(s.Body, f)
	}
}

func rewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Unary:
		e.X = rewriteExpr(e.X, f)
	case *Binary:
		e.X = rewriteExpr(e.X, f)
		e.Y = rewriteExpr(e.Y, f)
	case *Ternary:
		e.Cond = rewriteExpr(e.Cond, f)
		e.Then = rewriteExpr(e.Then, f)
		e.Else = rewriteExpr(e.Else, f)
	case *Concat:
		for i := range e.Parts {
			e.Parts[i] = rewriteExpr(e.Parts[i], f)
		}
	case *Repeat:
		for i := range e.Parts {
			e.Parts[i] = rewriteExpr(e.Parts[i], f)
		}
	case *Index:
		e.X = rewriteExpr(e.X, f)
		e.Idx = rewriteExpr(e.Idx, f)
	case *PartSelect:
		e.X = rewriteExpr(e.X, f)
	}
	return f(e)
}
